//! Database instances: a collection of named relations over a common domain
//! `[n]`, with the bit-size accounting used by the MPC cost model.
//!
//! Relations are stored behind [`Arc`], so **cloning a database is cheap**
//! (one shallow map clone) and mutation is copy-on-write *per relation*: an
//! insert into `R` copies only `R`'s row buffer, while `S` and `T` keep
//! being shared with every other clone. This is what makes snapshot-style
//! engines pay O(touched data), not O(database), per mutation.

use crate::relation::Relation;
use crate::tuple::Value;
use crate::{bits_per_value, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A database instance over a fixed domain `[0, domain_size)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Database {
    domain_size: u64,
    relations: BTreeMap<String, Arc<Relation>>,
}

impl Database {
    /// Create an empty database over a domain of the given size.
    pub fn new(domain_size: u64) -> Self {
        Database {
            domain_size: domain_size.max(1),
            relations: BTreeMap::new(),
        }
    }

    /// The domain size `n`.
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Bits required per value (`log n`).
    pub fn bits_per_value(&self) -> u64 {
        bits_per_value(self.domain_size)
    }

    /// Insert (or replace) a relation, keyed by its schema name.
    pub fn insert(&mut self, relation: Relation) {
        self.insert_arc(Arc::new(relation));
    }

    /// Insert (or replace) an already-shared relation without copying its
    /// rows — the copy-on-write path used when building the next version of
    /// a database from a previous one.
    pub fn insert_arc(&mut self, relation: Arc<Relation>) {
        self.relations
            .insert(relation.name().to_string(), relation);
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(Arc::as_ref)
    }

    /// The shared handle of a relation, if present. Two databases returning
    /// pointer-equal handles for a name are guaranteed to hold identical
    /// rows for it (the basis for reusing per-relation statistics across
    /// snapshots).
    pub fn relation_arc(&self, name: &str) -> Option<&Arc<Relation>> {
        self.relations.get(name)
    }

    /// Look up a relation by name, panicking with a clear message when it is
    /// missing. Use when the query guarantees the relation must exist.
    pub fn expect_relation(&self, name: &str) -> &Relation {
        self.relations
            .get(name)
            .unwrap_or_else(|| panic!("relation `{name}` not present in database"))
    }

    /// Mutable access to a relation. Copy-on-write: when the relation is
    /// shared with other database clones (e.g. an older snapshot), its rows
    /// are copied once here; an unshared relation is mutated in place.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name).map(Arc::make_mut)
    }

    /// Iterate over relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values().map(Arc::as_ref)
    }

    /// Iterate over the shared relation handles in name order (see
    /// [`Database::relation_arc`] for the pointer-equality guarantee).
    pub fn relation_arcs(&self) -> impl Iterator<Item = (&str, &Arc<Relation>)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of all relations, in sorted order.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Total input size in bits: `|I| = Σ_j M_j`.
    pub fn total_size_bits(&self) -> u64 {
        let bpv = self.bits_per_value();
        self.relations.values().map(|r| r.size_bits(bpv)).sum()
    }

    /// Size in bits of a single relation (`M_j`).
    pub fn relation_size_bits(&self, name: &str) -> u64 {
        self.expect_relation(name).size_bits(self.bits_per_value())
    }

    /// Cardinalities `m_j` keyed by relation name.
    pub fn cardinalities(&self) -> BTreeMap<String, usize> {
        self.relations
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    /// Bit sizes `M_j` keyed by relation name.
    pub fn sizes_bits(&self) -> BTreeMap<String, u64> {
        let bpv = self.bits_per_value();
        self.relations
            .iter()
            .map(|(k, v)| (k.clone(), v.size_bits(bpv)))
            .collect()
    }

    /// Build a database from a list of relations, inferring the domain size
    /// as one more than the largest value appearing anywhere (minimum 2).
    pub fn from_relations(relations: Vec<Relation>) -> Self {
        let max_value: Value = relations
            .iter()
            .flat_map(|r| r.values().iter().copied())
            .max()
            .unwrap_or(1);
        let mut db = Database::new((max_value + 1).max(2));
        for r in relations {
            db.insert(r);
        }
        db
    }

    /// True when every relation is a matching (degree ≤ 1 everywhere):
    /// the skew-free databases of Section 3.
    pub fn is_matching_database(&self) -> bool {
        self.relations.values().all(|r| r.is_matching())
    }

    /// Create an empty relation with the given schema and register it.
    pub fn create_relation(&mut self, schema: Schema) -> &mut Relation {
        let name = schema.name().to_string();
        self.relations
            .insert(name.clone(), Arc::new(Relation::empty(schema)));
        Arc::make_mut(self.relations.get_mut(&name).expect("just inserted"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn db() -> Database {
        let mut db = Database::new(1 << 10);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            vec![vec![1, 2], vec![3, 4]],
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S", &["y", "z"]),
            vec![vec![2, 5]],
        ));
        db
    }

    #[test]
    fn lookup_and_counts() {
        let db = db();
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.total_tuples(), 3);
        assert!(db.relation("R").is_some());
        assert!(db.relation("T").is_none());
        assert_eq!(db.relation_names(), vec!["R".to_string(), "S".to_string()]);
        assert_eq!(db.expect_relation("S").len(), 1);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn expect_relation_panics_when_missing() {
        db().expect_relation("missing");
    }

    #[test]
    fn size_accounting() {
        let db = db();
        assert_eq!(db.bits_per_value(), 10);
        assert_eq!(db.relation_size_bits("R"), 2 * 2 * 10);
        // a_S = 1 attribute, m_S = 2 tuples, log n = 10 bits.
        assert_eq!(db.relation_size_bits("S"), 2 * 10);
        assert_eq!(db.total_size_bits(), 40 + 20);
        assert_eq!(db.cardinalities()["R"], 2);
        assert_eq!(db.sizes_bits()["S"], 20);
    }

    #[test]
    fn from_relations_infers_domain() {
        let r = Relation::from_rows(Schema::from_strs("R", &["x"]), vec![vec![41]]);
        let db = Database::from_relations(vec![r]);
        assert_eq!(db.domain_size(), 42);
    }

    #[test]
    fn matching_database_detection() {
        let mut db = Database::new(100);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            vec![vec![1, 2], vec![3, 4]],
        ));
        assert!(db.is_matching_database());
        db.insert(Relation::from_rows(
            Schema::from_strs("S", &["y", "z"]),
            vec![vec![1, 2], vec![1, 3]],
        ));
        assert!(!db.is_matching_database());
    }

    #[test]
    fn create_relation_registers_empty_relation() {
        let mut db = Database::new(10);
        db.create_relation(Schema::from_strs("T", &["a"]));
        assert!(db.relation("T").unwrap().is_empty());
    }

    #[test]
    fn mutable_access() {
        let mut db = db();
        db.relation_mut("R").unwrap().push(Tuple::from([7, 8]));
        assert_eq!(db.relation("R").unwrap().len(), 3);
    }

    #[test]
    fn clones_share_relations_until_mutated() {
        let original = db();
        let mut copy = original.clone();
        assert!(Arc::ptr_eq(
            original.relation_arc("R").unwrap(),
            copy.relation_arc("R").unwrap()
        ));
        copy.relation_mut("R").unwrap().push(Tuple::from([7, 8]));
        assert!(
            !Arc::ptr_eq(
                original.relation_arc("R").unwrap(),
                copy.relation_arc("R").unwrap()
            ),
            "mutating a shared relation copies it"
        );
        assert!(
            Arc::ptr_eq(
                original.relation_arc("S").unwrap(),
                copy.relation_arc("S").unwrap()
            ),
            "untouched relations keep being shared"
        );
        assert_eq!(original.relation("R").unwrap().len(), 2, "original intact");
        assert_eq!(copy.relation("R").unwrap().len(), 3);
    }

    use crate::Tuple;
}
