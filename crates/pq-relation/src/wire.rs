//! Zero-copy-friendly wire encoding for flat row buffers.
//!
//! The flat row-major storage of [`Relation`] is already the ideal wire
//! format: a fragment is fully described by its schema, a row count and the
//! raw `u64` row buffer. This module converts that buffer to and from
//! little-endian bytes — one pass, no per-row allocation — so network
//! codecs (the `pq-mpc` cluster frames) can ship fragments as
//! `length ‖ memcpy` without inventing their own tuple serialisation.
//!
//! Decoding is defensive: the byte slice must be exactly `rows · arity · 8`
//! bytes, so a truncated or padded frame surfaces as a located
//! [`WireError`] instead of silently mis-framing rows.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Value;
use std::fmt;

/// Ways a raw row buffer can fail to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The byte length is not a multiple of 8 (whole `u64` values).
    UnalignedBytes {
        /// Length of the offending byte slice.
        len: usize,
    },
    /// The value count does not equal `rows · arity`.
    ShapeMismatch {
        /// Relation name the buffer was decoded for.
        relation: String,
        /// Declared row count.
        rows: usize,
        /// Arity of the declared schema.
        arity: usize,
        /// Number of values actually present in the buffer.
        values: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnalignedBytes { len } => {
                write!(f, "row buffer of {len} byte(s) is not a whole number of u64 values")
            }
            WireError::ShapeMismatch {
                relation,
                rows,
                arity,
                values,
            } => write!(
                f,
                "row buffer for `{relation}` holds {values} value(s) but {rows} row(s) of \
                 arity {arity} need exactly {}",
                rows.saturating_mul(*arity)
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Append `values` to `out` as little-endian bytes (8 bytes per value).
pub fn values_to_le_bytes(values: &[Value], out: &mut Vec<u8>) {
    out.reserve(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode a little-endian byte slice into values. The slice must hold a
/// whole number of `u64`s.
pub fn values_from_le_bytes(bytes: &[u8]) -> Result<Vec<Value>, WireError> {
    if bytes.len() % 8 != 0 {
        return Err(WireError::UnalignedBytes { len: bytes.len() });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| Value::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")))
        .collect())
}

impl Relation {
    /// Append this relation's raw row buffer to `out` as little-endian
    /// bytes — `len() · arity() · 8` bytes, rows in storage order. The
    /// row count is **not** encoded; wire formats carry it alongside (it
    /// cannot be recovered from the buffer for nullary relations).
    pub fn write_rows_le(&self, out: &mut Vec<u8>) {
        values_to_le_bytes(self.values(), out);
    }

    /// Rebuild a relation from a schema, an explicit row count and the raw
    /// little-endian row buffer produced by [`Relation::write_rows_le`].
    ///
    /// The byte slice must be exactly `rows · arity · 8` bytes; anything
    /// else (truncation, padding, a row count that disagrees with the
    /// buffer) is a [`WireError`]. The declared row count comes off the
    /// wire, so even `rows · arity` overflowing `usize` is an error here,
    /// never a panic or a wrapped (and thus accidentally matching) size.
    pub fn from_rows_le(schema: Schema, rows: usize, bytes: &[u8]) -> Result<Relation, WireError> {
        let values = values_from_le_bytes(bytes)?;
        let expected = rows.checked_mul(schema.arity());
        if expected != Some(values.len()) {
            return Err(WireError::ShapeMismatch {
                relation: schema.name().to_string(),
                rows,
                arity: schema.arity(),
                values: values.len(),
            });
        }
        let mut relation = Relation::empty(schema);
        relation.values = values;
        relation.rows = rows;
        Ok(relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(relation: &Relation) -> Relation {
        let mut bytes = Vec::new();
        relation.write_rows_le(&mut bytes);
        assert_eq!(bytes.len(), relation.len() * relation.arity() * 8);
        Relation::from_rows_le(relation.schema().clone(), relation.len(), &bytes)
            .expect("round trip decodes")
    }

    #[test]
    fn binary_relation_round_trips() {
        let r = Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            vec![vec![1, 2], vec![u64::MAX, 0], vec![3, 4]],
        );
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn empty_and_nullary_relations_round_trip() {
        let empty = Relation::empty(Schema::from_strs("E", &["x"]));
        assert_eq!(roundtrip(&empty), empty);
        // A nullary relation with rows: zero bytes, explicit row count.
        let mut nullary = Relation::empty(Schema::from_strs("N", &[]));
        nullary.push_row(&[]);
        nullary.push_row(&[]);
        assert_eq!(nullary.len(), 2);
        let back = roundtrip(&nullary);
        assert_eq!(back.len(), 2);
        assert_eq!(back, nullary);
    }

    #[test]
    fn little_endian_layout_is_stable() {
        let r = Relation::from_rows(Schema::from_strs("R", &["x"]), vec![vec![0x0102_0304]]);
        let mut bytes = Vec::new();
        r.write_rows_le(&mut bytes);
        assert_eq!(bytes, vec![0x04, 0x03, 0x02, 0x01, 0, 0, 0, 0]);
    }

    #[test]
    fn unaligned_bytes_are_rejected() {
        let err = values_from_le_bytes(&[1, 2, 3]).unwrap_err();
        assert_eq!(err, WireError::UnalignedBytes { len: 3 });
        assert!(err.to_string().contains("3 byte(s)"));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let schema = Schema::from_strs("R", &["x", "y"]);
        // One value where one row of arity 2 needs two.
        let err = Relation::from_rows_le(schema.clone(), 1, &7u64.to_le_bytes()).unwrap_err();
        assert!(matches!(err, WireError::ShapeMismatch { values: 1, .. }), "{err}");
        assert!(err.to_string().contains('R'));
        // Extra trailing row the count does not admit.
        let mut bytes = Vec::new();
        values_to_le_bytes(&[1, 2, 3, 4], &mut bytes);
        let err = Relation::from_rows_le(schema, 1, &bytes).unwrap_err();
        assert!(matches!(err, WireError::ShapeMismatch { values: 4, .. }));
    }

    #[test]
    fn overflowing_row_count_is_an_error_not_a_panic() {
        // `rows · arity` would overflow usize; a wrapped multiply could
        // accidentally equal the buffer's value count and mis-frame it.
        let schema = Schema::from_strs("R", &["x", "y"]);
        let err = Relation::from_rows_le(schema, usize::MAX, &[]).unwrap_err();
        assert!(matches!(err, WireError::ShapeMismatch { values: 0, .. }), "{err}");
        // The Display path saturates instead of overflowing too.
        assert!(err.to_string().contains("need exactly"));
    }

    mod mangling {
        use super::super::*;
        use proptest::prelude::*;

        fn relation(arity: usize, rows: usize, values: &[u64]) -> Relation {
            let attrs: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
            let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let mut relation = Relation::empty(Schema::from_strs("M", &attrs));
            if arity == 0 {
                for _ in 0..rows {
                    relation.push_row(&[]);
                }
            } else {
                for row in values[..rows * arity].chunks(arity) {
                    relation.push_row(row);
                }
            }
            relation
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            // Decoding a mangled frame must never panic or over-read: every
            // outcome is either a clean decode (when the mangling happens to
            // preserve the frame's shape) or a typed `WireError`.
            #[test]
            fn mangled_frames_never_panic(
                arity in 0usize..4,
                values in proptest::collection::vec(any::<u64>(), 0..24),
                cut in 0usize..200,
                flip_at in 0usize..200,
                claimed_rows in 0usize..32,
            ) {
                let rows = values.len().checked_div(arity).unwrap_or(values.len());
                let relation = relation(arity, rows, &values);
                let mut bytes = Vec::new();
                relation.write_rows_le(&mut bytes);

                // Truncation: a cut that is not on a whole-row boundary must
                // be rejected; a whole-row cut with the matching count decodes.
                let cut = cut.min(bytes.len());
                let truncated = &bytes[..cut];
                match Relation::from_rows_le(relation.schema().clone(), rows, truncated) {
                    Ok(back) => {
                        prop_assert_eq!(cut, bytes.len());
                        prop_assert_eq!(back, relation.clone());
                    }
                    Err(WireError::UnalignedBytes { len }) => prop_assert!(len % 8 != 0),
                    Err(WireError::ShapeMismatch { values, .. }) => {
                        prop_assert_eq!(values, cut / 8);
                    }
                }

                // Bit flips keep the shape: any u64 is a legal value, so the
                // decode succeeds and returns exactly the flipped buffer.
                if !bytes.is_empty() {
                    let mut flipped = bytes.clone();
                    let at = flip_at % flipped.len();
                    flipped[at] ^= 0x40;
                    let back = Relation::from_rows_le(
                        relation.schema().clone(), rows, &flipped,
                    );
                    let back = back.expect("shape-preserving flip decodes");
                    prop_assert_eq!(back.len(), rows);
                    prop_assert_ne!(back, relation.clone());
                }

                // A dishonest row count never decodes (except nullary, where
                // zero bytes carry any claimed count by design).
                if claimed_rows != rows && arity > 0 {
                    let err = Relation::from_rows_le(
                        relation.schema().clone(), claimed_rows, &bytes,
                    );
                    prop_assert!(err.is_err());
                }
            }
        }
    }
}
