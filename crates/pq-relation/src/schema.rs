//! Relation schemas: a relation name plus an ordered list of attribute
//! names.
//!
//! Attribute names double as query-variable names: when a conjunctive query
//! atom `S_j(x, y)` is instantiated, the corresponding relation instance
//! carries the schema `S_j(x, y)`, so natural joins over shared attribute
//! names compute exactly the conjunctive query.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The schema of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attributes: Vec<String>,
}

impl Schema {
    /// Create a schema from a relation name and attribute names.
    ///
    /// # Panics
    /// Panics if two attributes share a name (a relation over variables must
    /// bind each variable once; repeated variables in an atom are handled at
    /// the query layer by pre-selecting the relation).
    pub fn new(name: impl Into<String>, attributes: Vec<String>) -> Self {
        let name = name.into();
        for (i, a) in attributes.iter().enumerate() {
            assert!(
                !attributes[..i].contains(a),
                "duplicate attribute `{a}` in schema `{name}`"
            );
        }
        Schema { name, attributes }
    }

    /// Convenience constructor from string slices.
    pub fn from_strs(name: &str, attributes: &[&str]) -> Self {
        Schema::new(name, attributes.iter().map(|s| s.to_string()).collect())
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names, in column order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of attributes (arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of an attribute, if present.
    pub fn position(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// Attributes shared with another schema, in this schema's column order.
    pub fn common_attributes(&self, other: &Schema) -> Vec<String> {
        self.attributes
            .iter()
            .filter(|a| other.position(a).is_some())
            .cloned()
            .collect()
    }

    /// Return a new schema with the same attributes but a different name.
    pub fn renamed(&self, name: impl Into<String>) -> Schema {
        Schema {
            name: name.into(),
            attributes: self.attributes.clone(),
        }
    }

    /// Return a new schema containing only the given attributes (in the
    /// given order), named `name`.
    ///
    /// # Panics
    /// Panics if an attribute is not part of this schema.
    pub fn project(&self, name: impl Into<String>, attributes: &[String]) -> Schema {
        for a in attributes {
            assert!(
                self.position(a).is_some(),
                "attribute `{a}` not in schema `{}`",
                self.name
            );
        }
        Schema::new(name, attributes.to_vec())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Schema::from_strs("R", &["x", "y"]);
        assert_eq!(s.name(), "R");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attributes(), &["x".to_string(), "y".to_string()]);
        assert_eq!(s.position("x"), Some(0));
        assert_eq!(s.position("y"), Some(1));
        assert_eq!(s.position("z"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attributes_are_rejected() {
        Schema::from_strs("R", &["x", "x"]);
    }

    #[test]
    fn common_attributes_preserve_order() {
        let r = Schema::from_strs("R", &["x", "y", "z"]);
        let s = Schema::from_strs("S", &["z", "x"]);
        assert_eq!(r.common_attributes(&s), vec!["x", "z"]);
        assert_eq!(s.common_attributes(&r), vec!["z", "x"]);
    }

    #[test]
    fn renamed_keeps_attributes() {
        let r = Schema::from_strs("R", &["x", "y"]);
        let q = r.renamed("Q");
        assert_eq!(q.name(), "Q");
        assert_eq!(q.attributes(), r.attributes());
    }

    #[test]
    fn projection_of_schema() {
        let r = Schema::from_strs("R", &["x", "y", "z"]);
        let p = r.project("P", &["z".to_string(), "x".to_string()]);
        assert_eq!(p.attributes(), &["z".to_string(), "x".to_string()]);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn projection_of_unknown_attribute_panics() {
        let r = Schema::from_strs("R", &["x"]);
        r.project("P", &["w".to_string()]);
    }

    #[test]
    fn display_format() {
        let s = Schema::from_strs("S1", &["x", "y"]);
        assert_eq!(s.to_string(), "S1(x, y)");
    }
}
