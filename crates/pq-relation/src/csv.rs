//! Loading relations from CSV/TSV files.
//!
//! The query engine's CLI (`pqsh`) feeds on plain delimited text files: the
//! first row names the columns, every following row is one tuple. Values are
//! arbitrary tokens — they are mapped to the `u64` domain the algorithms
//! work over through a [`ValueDictionary`] shared by every relation of a
//! database, so equal tokens in different files join correctly and query
//! answers can be decoded back to the original text.
//!
//! The delimiter is sniffed from the header line (a tab makes the file TSV,
//! otherwise it is comma-separated), so `.csv` and `.tsv` files can be mixed
//! freely in one load.

use crate::database::Database;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Value;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Bidirectional mapping between the raw string tokens of loaded files and
/// the `u64` domain values the algorithms operate on.
///
/// Every distinct token — numeric or not — receives the next fresh id, so a
/// dictionary shared across the relations of one database makes the encoded
/// values join exactly where the original tokens were equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueDictionary {
    by_token: HashMap<String, Value>,
    tokens: Vec<String>,
}

impl ValueDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        ValueDictionary::default()
    }

    /// The id of `token`, assigning the next fresh id on first sight.
    pub fn encode(&mut self, token: &str) -> Value {
        if let Some(&v) = self.by_token.get(token) {
            return v;
        }
        let v = self.tokens.len() as Value;
        self.tokens.push(token.to_string());
        self.by_token.insert(token.to_string(), v);
        v
    }

    /// The token of an id, if the id was ever assigned.
    pub fn decode(&self, value: Value) -> Option<&str> {
        self.tokens.get(value as usize).map(String::as_str)
    }

    /// The token of an id, falling back to the numeric form of the id
    /// itself for values outside the dictionary (e.g. synthetic data).
    pub fn decode_or_number(&self, value: Value) -> String {
        self.decode(value)
            .map(str::to_string)
            .unwrap_or_else(|| value.to_string())
    }

    /// Number of distinct tokens seen so far (the encoded domain size).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no token has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The interned tokens in id order (`tokens()[v]` is the token of `v`).
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Rebuild a dictionary from tokens in id order (e.g. read back from a
    /// checkpoint). Inverse of [`ValueDictionary::tokens`].
    pub fn from_tokens(tokens: Vec<String>) -> Self {
        let by_token = tokens
            .iter()
            .enumerate()
            .map(|(v, t)| (t.clone(), v as Value))
            .collect();
        ValueDictionary { by_token, tokens }
    }
}

/// Errors raised while loading delimited files.
#[derive(Debug)]
pub enum CsvError {
    /// The file could not be read.
    Io {
        /// Path of the offending file.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file content is malformed (bad header, ragged row, …).
    Malformed {
        /// Path of the offending file.
        path: PathBuf,
        /// 1-based line number of the problem.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io { path, source } => {
                write!(f, "cannot read `{}`: {source}", path.display())
            }
            CsvError::Malformed {
                path,
                line,
                message,
            } => write!(f, "{}:{line}: {message}", path.display()),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io { source, .. } => Some(source),
            CsvError::Malformed { .. } => None,
        }
    }
}

/// Parse delimited text into a relation named `name`, encoding every value
/// through `dictionary`. The first non-empty line is the header naming the
/// columns; the delimiter is a tab when the header contains one, a comma
/// otherwise. `path` is used in error messages only.
pub fn parse_relation_text(
    name: &str,
    text: &str,
    path: &Path,
    dictionary: &mut ValueDictionary,
) -> Result<Relation, CsvError> {
    let malformed = |line: usize, message: String| CsvError::Malformed {
        path: path.to_path_buf(),
        line,
        message,
    };
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim_end_matches('\r')))
        .filter(|(_, l)| !l.trim().is_empty());
    let (header_line, header) = lines
        .next()
        .ok_or_else(|| malformed(1, "empty file: expected a header row".to_string()))?;
    let delimiter = if header.contains('\t') { '\t' } else { ',' };
    let columns: Vec<String> = header
        .split(delimiter)
        .map(|c| c.trim().to_string())
        .collect();
    for (i, c) in columns.iter().enumerate() {
        if c.is_empty() {
            return Err(malformed(
                header_line,
                format!("empty name for column {}", i + 1),
            ));
        }
        if columns[..i].contains(c) {
            return Err(malformed(
                header_line,
                format!("duplicate column name `{c}`"),
            ));
        }
    }
    let schema = Schema::new(name, columns);
    let arity = schema.arity();
    let mut relation = Relation::empty(schema);
    let mut row: Vec<Value> = Vec::with_capacity(arity);
    for (line_no, line) in lines {
        row.clear();
        let mut fields = 0usize;
        for field in line.split(delimiter) {
            fields += 1;
            if fields <= arity {
                row.push(dictionary.encode(field.trim()));
            }
        }
        if fields != arity {
            return Err(malformed(
                line_no,
                format!("expected {arity} fields, found {fields}"),
            ));
        }
        relation.push_row(&row);
    }
    relation.dedup();
    Ok(relation)
}

/// Load one CSV/TSV file as a relation named after the file stem, encoding
/// values through `dictionary`.
pub fn load_relation_csv(
    path: &Path,
    dictionary: &mut ValueDictionary,
) -> Result<Relation, CsvError> {
    let text = std::fs::read_to_string(path).map_err(|source| CsvError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .filter(|s| !s.is_empty())
        .ok_or_else(|| CsvError::Malformed {
            path: path.to_path_buf(),
            line: 0,
            message: "cannot derive a relation name from the file name".to_string(),
        })?
        .to_string();
    parse_relation_text(&name, &text, path, dictionary)
}

/// Load a set of CSV/TSV files into one database over a shared dictionary.
/// Directory entries are expanded to their `.csv`/`.tsv` children (sorted by
/// name, so loads are deterministic); plain files are taken as given.
pub fn load_database_files(
    paths: &[PathBuf],
) -> Result<(Database, ValueDictionary), CsvError> {
    let mut files: Vec<PathBuf> = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut children: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|source| CsvError::Io {
                    path: path.clone(),
                    source,
                })?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    matches!(
                        p.extension().and_then(|e| e.to_str()),
                        Some("csv") | Some("tsv")
                    )
                })
                .collect();
            children.sort();
            files.extend(children);
        } else {
            files.push(path.clone());
        }
    }
    let mut dictionary = ValueDictionary::new();
    let mut relations = Vec::with_capacity(files.len());
    let mut sources: HashMap<String, PathBuf> = HashMap::new();
    for file in &files {
        let relation = load_relation_csv(file, &mut dictionary)?;
        if let Some(first) = sources.get(relation.name()) {
            // Database::insert replaces by name; loading two files with the
            // same stem would silently drop one, so reject it instead.
            return Err(CsvError::Malformed {
                path: file.clone(),
                line: 0,
                message: format!(
                    "relation `{}` was already loaded from `{}`; rename one file",
                    relation.name(),
                    first.display()
                ),
            });
        }
        sources.insert(relation.name().to_string(), file.clone());
        relations.push(relation);
    }
    let mut db = Database::new((dictionary.len() as u64).max(2));
    for r in relations {
        db.insert(r);
    }
    Ok((db, dictionary))
}

/// Load every `.csv`/`.tsv` file of a directory into one database over a
/// shared dictionary (convenience wrapper around [`load_database_files`]).
pub fn load_database_dir(dir: &Path) -> Result<(Database, ValueDictionary), CsvError> {
    load_database_files(std::slice::from_ref(&dir.to_path_buf()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(name: &str, text: &str, dict: &mut ValueDictionary) -> Relation {
        parse_relation_text(name, text, Path::new("test.csv"), dict).expect("parses")
    }

    #[test]
    fn parses_comma_separated_values_with_header() {
        let mut dict = ValueDictionary::new();
        let r = parse("R", "x,y\na,b\nc,b\n", &mut dict);
        assert_eq!(r.name(), "R");
        assert_eq!(r.schema().attributes(), &["x".to_string(), "y".to_string()]);
        assert_eq!(r.len(), 2);
        assert_eq!(dict.len(), 3); // a, b, c
        assert_eq!(dict.decode(dict.by_token["b"]), Some("b"));
    }

    #[test]
    fn sniffs_tabs_and_trims_crlf() {
        let mut dict = ValueDictionary::new();
        let r = parse("S", "x\ty\r\n1\t2\r\n", &mut dict);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn shared_dictionary_joins_tokens_across_relations() {
        let mut dict = ValueDictionary::new();
        let r = parse("R", "x,y\nann,bob\n", &mut dict);
        let s = parse("S", "y,z\nbob,carl\n", &mut dict);
        let j = crate::join::natural_join(&r, &s);
        assert_eq!(j.len(), 1);
        let decoded: Vec<String> = j
            .row(0)
            .iter()
            .map(|&v| dict.decode_or_number(v))
            .collect();
        assert_eq!(decoded, vec!["ann", "bob", "carl"]);
    }

    #[test]
    fn duplicate_rows_are_deduplicated() {
        let mut dict = ValueDictionary::new();
        let r = parse("R", "x\n7\n7\n8\n", &mut dict);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ragged_row_is_reported_with_line_number() {
        let mut dict = ValueDictionary::new();
        let err = parse_relation_text("R", "x,y\n1,2\n3\n", Path::new("r.csv"), &mut dict)
            .expect_err("ragged");
        let msg = err.to_string();
        assert!(msg.contains("r.csv:3"), "{msg}");
        assert!(msg.contains("expected 2 fields"), "{msg}");
    }

    #[test]
    fn duplicate_and_empty_column_names_are_rejected() {
        let mut dict = ValueDictionary::new();
        let err = parse_relation_text("R", "x,x\n1,2\n", Path::new("r.csv"), &mut dict)
            .expect_err("duplicate");
        assert!(err.to_string().contains("duplicate column name"), "{err}");
        let err = parse_relation_text("R", "x,,z\n1,2,3\n", Path::new("r.csv"), &mut dict)
            .expect_err("empty");
        assert!(err.to_string().contains("empty name"), "{err}");
    }

    #[test]
    fn empty_file_is_rejected() {
        let mut dict = ValueDictionary::new();
        let err = parse_relation_text("R", "  \n", Path::new("r.csv"), &mut dict)
            .expect_err("empty file");
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn loads_a_directory_into_one_database() {
        let dir = std::env::temp_dir().join(format!("pq_csv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("R.csv"), "x,y\n1,2\n").unwrap();
        std::fs::write(dir.join("S.tsv"), "y\tz\n2\t3\n").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let (db, dict) = load_database_dir(&dir).expect("loads");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.relation_names(), vec!["R".to_string(), "S".to_string()]);
        // `2` is shared between R.y and S.y through the dictionary.
        let r = db.expect_relation("R");
        let s = db.expect_relation("S");
        assert_eq!(r.row(0)[1], s.row(0)[0]);
        assert_eq!(dict.len(), 3);
        assert!(db.domain_size() >= dict.len() as u64);
    }

    #[test]
    fn duplicate_relation_names_across_files_are_rejected() {
        let dir = std::env::temp_dir().join(format!("pq_csv_dup_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("R.csv"), "x,y\n1,2\n").unwrap();
        std::fs::write(dir.join("R.tsv"), "x\ty\n3\t4\n").unwrap();
        let err = load_database_dir(&dir).expect_err("duplicate stem");
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.to_string().contains("already loaded"), "{err}");
    }

    #[test]
    fn decode_or_number_falls_back_to_digits() {
        let dict = ValueDictionary::new();
        assert_eq!(dict.decode_or_number(42), "42");
        assert!(dict.is_empty());
    }
}
