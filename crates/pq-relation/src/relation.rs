//! Relations: a schema plus a multiset of tuples.
//!
//! Relations support the operations the paper's analysis needs: projection,
//! selection, semijoin/antijoin (used in the multi-round machinery of
//! Section 5.2), frequency ("degree") computation `d_J(R)` from the
//! HyperCube load analysis, and bit-size accounting.

use crate::schema::Schema;
use crate::tuple::{Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A relation instance: a schema plus a list of tuples.
///
/// Tuples are stored as a `Vec`, so a relation is a bag; [`Relation::dedup`]
/// converts it to a set. All algorithms in this workspace produce and expect
/// set semantics, but intermediate routing states may briefly hold
/// duplicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Create a relation from a schema and tuples.
    ///
    /// # Panics
    /// Panics when a tuple's arity does not match the schema.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Self {
        for t in &tuples {
            assert_eq!(
                t.arity(),
                schema.arity(),
                "tuple arity {} does not match schema `{}` of arity {}",
                t.arity(),
                schema.name(),
                schema.arity()
            );
        }
        Relation { schema, tuples }
    }

    /// Create a relation from raw value rows.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        Relation::new(schema, rows.into_iter().map(Tuple::new).collect())
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The relation's name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of tuples (cardinality `m_j`).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples of the relation.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Add a tuple.
    ///
    /// # Panics
    /// Panics when the tuple arity does not match the schema.
    pub fn push(&mut self, tuple: Tuple) {
        assert_eq!(
            tuple.arity(),
            self.schema.arity(),
            "tuple arity mismatch for relation `{}`",
            self.schema.name()
        );
        self.tuples.push(tuple);
    }

    /// Extend with many tuples.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        for t in tuples {
            self.push(t);
        }
    }

    /// Size of the relation in bits: `arity * len * bits_per_value`
    /// (the paper's `M_j = a_j · m_j · log n`).
    pub fn size_bits(&self, bits_per_value: u64) -> u64 {
        self.arity() as u64 * self.len() as u64 * bits_per_value
    }

    /// Remove duplicate tuples (set semantics). Preserves first occurrence
    /// order.
    pub fn dedup(&mut self) {
        let mut seen = HashSet::with_capacity(self.tuples.len());
        self.tuples.retain(|t| seen.insert(t.clone()));
    }

    /// Sort tuples lexicographically (useful for comparisons in tests).
    pub fn sort(&mut self) {
        self.tuples.sort();
    }

    /// Return a sorted, deduplicated copy (canonical form for equality
    /// comparisons between query answers).
    pub fn canonicalized(&self) -> Relation {
        let mut r = self.clone();
        r.dedup();
        r.sort();
        r
    }

    /// Rename the relation in place (schema attributes unchanged). Cheaper
    /// than [`Relation::renamed`] when the tuples need not be copied.
    pub fn rename(&mut self, name: impl Into<String>) {
        self.schema = self.schema.renamed(name);
    }

    /// Rename the relation (schema attributes unchanged).
    pub fn renamed(&self, name: impl Into<String>) -> Relation {
        Relation {
            schema: self.schema.renamed(name),
            tuples: self.tuples.clone(),
        }
    }

    /// Return a relation with the same tuples but attributes renamed
    /// according to `mapping` (old name -> new name). Attributes not in the
    /// mapping keep their name.
    pub fn with_attributes_renamed(&self, mapping: &HashMap<String, String>) -> Relation {
        let attrs: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .map(|a| mapping.get(a).cloned().unwrap_or_else(|| a.clone()))
            .collect();
        Relation {
            schema: Schema::new(self.schema.name(), attrs),
            tuples: self.tuples.clone(),
        }
    }

    /// Project onto the given attributes (set semantics is *not* enforced;
    /// call [`Relation::dedup`] afterwards if needed).
    ///
    /// # Panics
    /// Panics when an attribute is missing from the schema.
    pub fn project(&self, attributes: &[String], name: &str) -> Relation {
        let positions: Vec<usize> = attributes
            .iter()
            .map(|a| {
                self.schema
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute `{a}` not in `{}`", self.schema.name()))
            })
            .collect();
        let schema = Schema::new(name, attributes.to_vec());
        let tuples = self.tuples.iter().map(|t| t.project(&positions)).collect();
        Relation { schema, tuples }
    }

    /// Select tuples where `attribute == value`.
    pub fn select_eq(&self, attribute: &str, value: Value) -> Relation {
        let pos = self
            .schema
            .position(attribute)
            .unwrap_or_else(|| panic!("attribute `{attribute}` not in `{}`", self.schema.name()));
        Relation {
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| t.get(pos) == value)
                .cloned()
                .collect(),
        }
    }

    /// Select tuples satisfying an arbitrary predicate.
    pub fn filter(&self, predicate: impl Fn(&Tuple) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.iter().filter(|t| predicate(t)).cloned().collect(),
        }
    }

    /// Frequency map over a subset of attributes: for every distinct
    /// projection value `J`, the degree `d_J(R) = |σ_J(R)|`.
    ///
    /// # Panics
    /// Panics when an attribute is missing from the schema.
    pub fn degree_map(&self, attributes: &[String]) -> HashMap<Tuple, usize> {
        let positions: Vec<usize> = attributes
            .iter()
            .map(|a| {
                self.schema
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute `{a}` not in `{}`", self.schema.name()))
            })
            .collect();
        let mut map: HashMap<Tuple, usize> = HashMap::new();
        for t in &self.tuples {
            *map.entry(t.project(&positions)).or_insert(0) += 1;
        }
        map
    }

    /// Maximum degree over a subset of attributes (`max_J d_J(R)`); zero for
    /// the empty relation.
    pub fn max_degree(&self, attributes: &[String]) -> usize {
        self.degree_map(attributes).values().copied().max().unwrap_or(0)
    }

    /// True when every degree over every single attribute is exactly one,
    /// i.e. the relation is an `a`-dimensional (partial) matching — the
    /// skew-free inputs of Section 3.
    pub fn is_matching(&self) -> bool {
        for attr in self.schema.attributes() {
            if self
                .degree_map(std::slice::from_ref(attr))
                .values()
                .any(|&d| d > 1)
            {
                return false;
            }
        }
        true
    }

    /// Semijoin `self ⋉ other`: tuples of `self` that agree with at least
    /// one tuple of `other` on their common attributes. With no common
    /// attributes this is `self` when `other` is non-empty, and empty
    /// otherwise.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let common = self.schema.common_attributes(other.schema());
        if common.is_empty() {
            return if other.is_empty() {
                Relation::empty(self.schema.clone())
            } else {
                self.clone()
            };
        }
        let keys: HashSet<Tuple> = other
            .project(&common, "__keys")
            .tuples
            .into_iter()
            .collect();
        let positions: Vec<usize> = common
            .iter()
            .map(|a| self.schema.position(a).expect("common attribute"))
            .collect();
        self.filter(|t| keys.contains(&t.project(&positions)))
    }

    /// Antijoin `self ▷ other`: tuples of `self` with *no* matching tuple in
    /// `other` on the common attributes.
    pub fn antijoin(&self, other: &Relation) -> Relation {
        let common = self.schema.common_attributes(other.schema());
        if common.is_empty() {
            return if other.is_empty() {
                self.clone()
            } else {
                Relation::empty(self.schema.clone())
            };
        }
        let keys: HashSet<Tuple> = other
            .project(&common, "__keys")
            .tuples
            .into_iter()
            .collect();
        let positions: Vec<usize> = common
            .iter()
            .map(|a| self.schema.position(a).expect("common attribute"))
            .collect();
        self.filter(|t| !keys.contains(&t.project(&positions)))
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            vec![vec![1, 10], vec![2, 20], vec![3, 10], vec![1, 10]],
        )
    }

    #[test]
    fn construction_and_size() {
        let r = sample();
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.size_bits(8), 4 * 2 * 8);
        assert_eq!(r.name(), "R");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Relation::from_rows(Schema::from_strs("R", &["x"]), vec![vec![1, 2]]);
    }

    #[test]
    fn dedup_and_sort() {
        let r = sample().canonicalized();
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.tuples(),
            &[
                Tuple::from([1, 10]),
                Tuple::from([2, 20]),
                Tuple::from([3, 10])
            ]
        );
    }

    #[test]
    fn projection() {
        let r = sample();
        let p = r.project(&["y".to_string()], "P");
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 4);
        let p = p.canonicalized();
        assert_eq!(p.tuples(), &[Tuple::from([10]), Tuple::from([20])]);
    }

    #[test]
    fn selection() {
        let r = sample();
        assert_eq!(r.select_eq("x", 1).len(), 2);
        assert_eq!(r.select_eq("y", 20).len(), 1);
        assert_eq!(r.select_eq("y", 999).len(), 0);
    }

    #[test]
    fn degree_map_counts_frequencies() {
        let r = sample();
        let d = r.degree_map(&["y".to_string()]);
        assert_eq!(d[&Tuple::from([10])], 3);
        assert_eq!(d[&Tuple::from([20])], 1);
        assert_eq!(r.max_degree(&["y".to_string()]), 3);
        assert_eq!(r.max_degree(&["x".to_string(), "y".to_string()]), 2);
    }

    #[test]
    fn matching_detection() {
        let m = Relation::from_rows(
            Schema::from_strs("M", &["x", "y"]),
            vec![vec![1, 4], vec![2, 5], vec![3, 6]],
        );
        assert!(m.is_matching());
        assert!(!sample().is_matching());
        assert!(Relation::empty(Schema::from_strs("E", &["x"])).is_matching());
    }

    #[test]
    fn semijoin_and_antijoin() {
        let r = sample();
        let s = Relation::from_rows(Schema::from_strs("S", &["y", "z"]), vec![vec![10, 100]]);
        let semi = r.semijoin(&s);
        assert_eq!(semi.len(), 3);
        let anti = r.antijoin(&s);
        assert_eq!(anti.len(), 1);
        assert_eq!(anti.tuples()[0], Tuple::from([2, 20]));
        // Disjoint attributes: semijoin keeps everything iff other non-empty.
        let t = Relation::from_rows(Schema::from_strs("T", &["w"]), vec![vec![7]]);
        assert_eq!(r.semijoin(&t).len(), r.len());
        assert_eq!(r.antijoin(&t).len(), 0);
        let empty_t = Relation::empty(Schema::from_strs("T", &["w"]));
        assert_eq!(r.semijoin(&empty_t).len(), 0);
        assert_eq!(r.antijoin(&empty_t).len(), r.len());
    }

    #[test]
    fn attribute_renaming() {
        let r = sample();
        let mut mapping = HashMap::new();
        mapping.insert("x".to_string(), "a".to_string());
        let renamed = r.with_attributes_renamed(&mapping);
        assert_eq!(
            renamed.schema().attributes(),
            &["a".to_string(), "y".to_string()]
        );
        assert_eq!(renamed.tuples(), r.tuples());
    }

    #[test]
    fn filter_with_predicate() {
        let r = sample();
        let f = r.filter(|t| t.get(0) + t.get(1) > 20);
        assert_eq!(f.len(), 1);
        assert_eq!(f.tuples()[0], Tuple::from([2, 20]));
    }
}
