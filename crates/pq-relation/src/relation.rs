//! Relations: a schema plus a multiset of rows in flat columnar storage.
//!
//! Relations support the operations the paper's analysis needs: projection,
//! selection, semijoin/antijoin (used in the multi-round machinery of
//! Section 5.2), frequency ("degree") computation `d_J(R)` from the
//! HyperCube load analysis, and bit-size accounting.
//!
//! # Storage layout
//!
//! Rows are stored **row-major in a single flat `Vec<Value>`** with the
//! arity as stride: row `i` occupies `values[i * arity .. (i + 1) * arity]`.
//! There is no per-row allocation anywhere — pushing a row is an
//! `extend_from_slice`, merging two relations is one `memcpy`, and scanning
//! is a linear walk over one contiguous buffer. The owned [`Tuple`] type
//! survives only at API boundaries that genuinely need owned rows (serde
//! payloads, `pqd` output, degree-map keys); everything on the execution hot
//! path works with borrowed `&[Value]` row views.

use crate::hash::{hash_values, PrehashedBuild};
use crate::rowindex::RowKeyIndex;
use crate::schema::Schema;
use crate::tuple::{Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A relation instance: a schema plus a flat row-major buffer of rows.
///
/// Rows are stored contiguously, so a relation is a bag; [`Relation::dedup`]
/// converts it to a set. All algorithms in this workspace produce and expect
/// set semantics, but intermediate routing states may briefly hold
/// duplicates.
///
/// # Iteration and borrowing contract
///
/// [`Relation::iter`] (and `&Relation as IntoIterator`) yields **borrowed
/// row views** `&[Value]` of length [`Relation::arity`], valid for as long
/// as the relation is not mutated; no row is copied or allocated during
/// iteration. [`Relation::row`] returns the same view by index. Callers that
/// need an owned row (to store it beyond the borrow, or to use it as an
/// owned map key) convert explicitly via [`Relation::tuple_at`] or
/// [`Relation::to_tuples`] — those are the only places a [`Tuple`] is
/// materialised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    /// Row-major values; `values.len() == rows * schema.arity()`.
    pub(crate) values: Vec<Value>,
    /// Number of rows. Kept explicitly so nullary relations (arity 0) can
    /// still hold tuples — the empty tuple has no values to store.
    pub(crate) rows: usize,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            values: Vec::new(),
            rows: 0,
        }
    }

    /// Create an empty relation with pre-allocated space for `rows` rows
    /// (the shuffle/partition paths size their fragments up front).
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let capacity = rows * schema.arity();
        Relation {
            schema,
            values: Vec::with_capacity(capacity),
            rows: 0,
        }
    }

    /// Create a relation from a schema and owned tuples (boundary
    /// constructor; the tuples are flattened into the row buffer).
    ///
    /// # Panics
    /// Panics when a tuple's arity does not match the schema.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Self {
        let mut rel = Relation::with_capacity(schema, tuples.len());
        for t in &tuples {
            rel.push_row(t.values());
        }
        rel
    }

    /// Create a relation from raw value rows.
    ///
    /// # Panics
    /// Panics when a row's length does not match the schema arity.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        let mut rel = Relation::with_capacity(schema, rows.len());
        for r in &rows {
            rel.push_row(r);
        }
        rel
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The relation's name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of tuples (cardinality `m_j`).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The raw row-major value buffer (`len() * arity()` values).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Borrowed view of row `i` (length [`Relation::arity`]).
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn row(&self, i: usize) -> &[Value] {
        assert!(i < self.rows, "row {i} out of bounds (len {})", self.rows);
        let a = self.schema.arity();
        &self.values[i * a..(i + 1) * a]
    }

    /// Iterate over borrowed row views (see the type-level borrowing
    /// contract).
    pub fn iter(&self) -> Rows<'_> {
        Rows {
            values: &self.values,
            arity: self.schema.arity(),
            front: 0,
            back: self.rows,
        }
    }

    /// Owned copy of row `i` (boundary use only).
    pub fn tuple_at(&self, i: usize) -> Tuple {
        Tuple::new(self.row(i).to_vec())
    }

    /// Owned copies of all rows (boundary use: serde payloads, assertions in
    /// tests). Never called on the execution hot path.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().map(|r| Tuple::new(r.to_vec())).collect()
    }

    /// Append a row view (the hot-path insertion: one `extend_from_slice`).
    ///
    /// # Panics
    /// Panics when the row length does not match the schema arity.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity mismatch for relation `{}`",
            self.schema.name()
        );
        self.values.extend_from_slice(row);
        self.rows += 1;
    }

    /// Append `row[positions[0]], row[positions[1]], …` as a new row —
    /// projection without an intermediate allocation.
    ///
    /// # Panics
    /// Panics when `positions.len()` does not match the schema arity or a
    /// position is out of bounds for `row`.
    pub fn push_row_projected(&mut self, row: &[Value], positions: &[usize]) {
        assert_eq!(
            positions.len(),
            self.schema.arity(),
            "projected row arity mismatch for relation `{}`",
            self.schema.name()
        );
        self.values.extend(positions.iter().map(|&p| row[p]));
        self.rows += 1;
    }

    /// Add an owned tuple (boundary convenience; flattened on insert).
    ///
    /// # Panics
    /// Panics when the tuple arity does not match the schema.
    pub fn push(&mut self, tuple: Tuple) {
        self.push_row(tuple.values());
    }

    /// Extend with many owned tuples.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        for t in tuples {
            self.push(t);
        }
    }

    /// Append every row of `other` (one buffer copy; the fragment-merge path
    /// of the simulated servers).
    ///
    /// # Panics
    /// Panics when the arities differ.
    pub fn append(&mut self, other: &Relation) {
        assert_eq!(
            self.schema.arity(),
            other.schema.arity(),
            "cannot append `{}` (arity {}) to `{}` (arity {})",
            other.name(),
            other.arity(),
            self.name(),
            self.arity()
        );
        self.values.extend_from_slice(&other.values);
        self.rows += other.rows;
    }

    /// Reserve space for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.values.reserve(additional * self.schema.arity());
    }

    /// Size of the relation in bits: `arity * len * bits_per_value`
    /// (the paper's `M_j = a_j · m_j · log n`).
    pub fn size_bits(&self, bits_per_value: u64) -> u64 {
        self.arity() as u64 * self.len() as u64 * bits_per_value
    }

    /// Remove duplicate tuples (set semantics). Preserves first occurrence
    /// order. Uses the seeded row hash of [`crate::hash`] with full-row
    /// verification on equal hashes — no per-row key allocation.
    pub fn dedup(&mut self) {
        if self.rows <= 1 {
            return;
        }
        let arity = self.schema.arity();
        if arity == 0 {
            // All nullary rows are the empty tuple.
            self.rows = 1;
            return;
        }
        // `map` takes each row hash to the first *kept* row with that hash;
        // `next` chains further kept rows sharing the hash. Slice equality
        // against the kept prefix of `out` resolves hash collisions exactly.
        const NONE: u32 = u32::MAX;
        assert!(
            self.rows < NONE as usize,
            "dedup supports at most {NONE} rows, relation `{}` has {}",
            self.name(),
            self.rows
        );
        let mut map: HashMap<u64, u32, PrehashedBuild> =
            HashMap::with_capacity_and_hasher(self.rows, PrehashedBuild);
        let mut next: Vec<u32> = Vec::new();
        let mut out: Vec<Value> = Vec::with_capacity(self.values.len());
        let mut kept = 0u32;
        for r in 0..self.rows {
            let row = &self.values[r * arity..(r + 1) * arity];
            let h = hash_values(row);
            let mut candidate = *map.get(&h).unwrap_or(&NONE);
            let mut duplicate = false;
            while candidate != NONE {
                let c = candidate as usize;
                if &out[c * arity..(c + 1) * arity] == row {
                    duplicate = true;
                    break;
                }
                candidate = next[c];
            }
            if !duplicate {
                out.extend_from_slice(row);
                let prev = map.insert(h, kept).unwrap_or(NONE);
                next.push(prev);
                kept += 1;
            }
        }
        self.values = out;
        self.rows = kept as usize;
    }

    /// Sort tuples lexicographically (useful for comparisons in tests).
    pub fn sort(&mut self) {
        let arity = self.schema.arity();
        if arity == 0 || self.rows <= 1 {
            return;
        }
        let mut order: Vec<usize> = (0..self.rows).collect();
        order.sort_unstable_by(|&a, &b| {
            self.values[a * arity..(a + 1) * arity]
                .cmp(&self.values[b * arity..(b + 1) * arity])
        });
        let mut sorted = Vec::with_capacity(self.values.len());
        for &i in &order {
            sorted.extend_from_slice(&self.values[i * arity..(i + 1) * arity]);
        }
        self.values = sorted;
    }

    /// Return a sorted, deduplicated copy (canonical form for equality
    /// comparisons between query answers).
    pub fn canonicalized(&self) -> Relation {
        let mut r = self.clone();
        r.dedup();
        r.sort();
        r
    }

    /// Rename the relation in place (schema attributes unchanged). Cheaper
    /// than [`Relation::renamed`] when the tuples need not be copied.
    pub fn rename(&mut self, name: impl Into<String>) {
        self.schema = self.schema.renamed(name);
    }

    /// Rename the relation (schema attributes unchanged).
    pub fn renamed(&self, name: impl Into<String>) -> Relation {
        Relation {
            schema: self.schema.renamed(name),
            values: self.values.clone(),
            rows: self.rows,
        }
    }

    /// Return a copy of this relation under a different schema of the same
    /// arity (one buffer copy; used to bind stored relations to query atoms
    /// without touching any row).
    ///
    /// # Panics
    /// Panics when the arities differ.
    pub fn with_schema(&self, schema: Schema) -> Relation {
        assert_eq!(
            schema.arity(),
            self.schema.arity(),
            "schema `{schema}` does not fit relation `{}` of arity {}",
            self.name(),
            self.arity()
        );
        Relation {
            schema,
            values: self.values.clone(),
            rows: self.rows,
        }
    }

    /// Return a relation with the same tuples but attributes renamed
    /// according to `mapping` (old name -> new name). Attributes not in the
    /// mapping keep their name.
    pub fn with_attributes_renamed(&self, mapping: &HashMap<String, String>) -> Relation {
        let attrs: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .map(|a| mapping.get(a).cloned().unwrap_or_else(|| a.clone()))
            .collect();
        Relation {
            schema: Schema::new(self.schema.name(), attrs),
            values: self.values.clone(),
            rows: self.rows,
        }
    }

    /// Project onto the given attributes (set semantics is *not* enforced;
    /// call [`Relation::dedup`] afterwards if needed). When the requested
    /// attributes are exactly this relation's columns in order, the buffer
    /// is copied wholesale instead of row by row.
    ///
    /// # Panics
    /// Panics when an attribute is missing from the schema.
    pub fn project(&self, attributes: &[String], name: &str) -> Relation {
        let positions: Vec<usize> = attributes
            .iter()
            .map(|a| {
                self.schema
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute `{a}` not in `{}`", self.schema.name()))
            })
            .collect();
        let schema = Schema::new(name, attributes.to_vec());
        if positions.len() == self.schema.arity()
            && positions.iter().enumerate().all(|(i, &p)| i == p)
        {
            return Relation {
                schema,
                values: self.values.clone(),
                rows: self.rows,
            };
        }
        let mut out = Relation::with_capacity(schema, self.rows);
        for row in self.iter() {
            out.push_row_projected(row, &positions);
        }
        out
    }

    /// Select tuples where `attribute == value`.
    ///
    /// # Panics
    /// Panics when the attribute is missing from the schema.
    pub fn select_eq(&self, attribute: &str, value: Value) -> Relation {
        let pos = self
            .schema
            .position(attribute)
            .unwrap_or_else(|| panic!("attribute `{attribute}` not in `{}`", self.schema.name()));
        self.filter(|row| row[pos] == value)
    }

    /// Select tuples satisfying an arbitrary predicate over the row view.
    pub fn filter(&self, predicate: impl Fn(&[Value]) -> bool) -> Relation {
        let mut out = Relation::empty(self.schema.clone());
        for row in self.iter() {
            if predicate(row) {
                out.push_row(row);
            }
        }
        out
    }

    /// Frequency map over a subset of attributes: for every distinct
    /// projection value `J`, the degree `d_J(R) = |σ_J(R)|`. The keys are
    /// owned [`Tuple`]s (one allocation per *distinct* key, not per row) —
    /// this is a statistics-time API, not an execution-time one.
    ///
    /// # Panics
    /// Panics when an attribute is missing from the schema.
    pub fn degree_map(&self, attributes: &[String]) -> HashMap<Tuple, usize> {
        let positions: Vec<usize> = attributes
            .iter()
            .map(|a| {
                self.schema
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute `{a}` not in `{}`", self.schema.name()))
            })
            .collect();
        let mut map: HashMap<Tuple, usize> = HashMap::new();
        let mut key: Vec<Value> = Vec::with_capacity(positions.len());
        for row in self.iter() {
            key.clear();
            key.extend(positions.iter().map(|&p| row[p]));
            // Borrow-based lookup: a Tuple is allocated only for new keys.
            match map.get_mut(key.as_slice()) {
                Some(count) => *count += 1,
                None => {
                    map.insert(Tuple::new(key.clone()), 1);
                }
            }
        }
        map
    }

    /// Maximum degree over a subset of attributes (`max_J d_J(R)`); zero for
    /// the empty relation.
    pub fn max_degree(&self, attributes: &[String]) -> usize {
        self.degree_map(attributes).values().copied().max().unwrap_or(0)
    }

    /// True when every degree over every single attribute is exactly one,
    /// i.e. the relation is an `a`-dimensional (partial) matching — the
    /// skew-free inputs of Section 3.
    pub fn is_matching(&self) -> bool {
        for attr in self.schema.attributes() {
            if self
                .degree_map(std::slice::from_ref(attr))
                .values()
                .any(|&d| d > 1)
            {
                return false;
            }
        }
        true
    }

    /// Semijoin `self ⋉ other`: tuples of `self` that agree with at least
    /// one tuple of `other` on their common attributes. With no common
    /// attributes this is `self` when `other` is non-empty, and empty
    /// otherwise.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        self.semijoin_filter(other, true)
    }

    /// Antijoin `self ▷ other`: tuples of `self` with *no* matching tuple in
    /// `other` on the common attributes.
    pub fn antijoin(&self, other: &Relation) -> Relation {
        self.semijoin_filter(other, false)
    }

    fn semijoin_filter(&self, other: &Relation, keep_matching: bool) -> Relation {
        let common = self.schema.common_attributes(other.schema());
        if common.is_empty() {
            return if other.is_empty() != keep_matching {
                self.clone()
            } else {
                Relation::empty(self.schema.clone())
            };
        }
        let self_positions: Vec<usize> = common
            .iter()
            .map(|a| self.schema.position(a).expect("common attribute"))
            .collect();
        let other_positions: Vec<usize> = common
            .iter()
            .map(|a| other.schema().position(a).expect("common attribute"))
            .collect();
        let index = RowKeyIndex::build(other, &other_positions);
        let mut out = Relation::empty(self.schema.clone());
        for row in self.iter() {
            if index.contains(other, &other_positions, row, &self_positions) == keep_matching {
                out.push_row(row);
            }
        }
        out
    }
}

/// Iterator over the borrowed row views of a [`Relation`].
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    values: &'a [Value],
    arity: usize,
    front: usize,
    back: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        if self.front == self.back {
            return None;
        }
        let i = self.front;
        self.front += 1;
        Some(&self.values[i * self.arity..(i + 1) * self.arity])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for Rows<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front == self.back {
            return None;
        }
        self.back -= 1;
        let i = self.back;
        Some(&self.values[i * self.arity..(i + 1) * self.arity])
    }
}

impl ExactSizeIterator for Rows<'_> {}
impl std::iter::FusedIterator for Rows<'_> {}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a [Value];
    type IntoIter = Rows<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            vec![vec![1, 10], vec![2, 20], vec![3, 10], vec![1, 10]],
        )
    }

    #[test]
    fn construction_and_size() {
        let r = sample();
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.size_bits(8), 4 * 2 * 8);
        assert_eq!(r.name(), "R");
        assert_eq!(r.values().len(), 8);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Relation::from_rows(Schema::from_strs("R", &["x"]), vec![vec![1, 2]]);
    }

    #[test]
    fn row_views_and_iteration() {
        let r = sample();
        assert_eq!(r.row(0), &[1, 10]);
        assert_eq!(r.row(3), &[1, 10]);
        let rows: Vec<&[Value]> = r.iter().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1], &[2, 20]);
        // Reverse iteration and exact size.
        assert_eq!(r.iter().len(), 4);
        assert_eq!(r.iter().next_back().unwrap(), &[1, 10]);
        assert_eq!(r.tuple_at(1), Tuple::from([2, 20]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        sample().row(4);
    }

    #[test]
    fn dedup_and_sort() {
        let r = sample().canonicalized();
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.to_tuples(),
            vec![
                Tuple::from([1, 10]),
                Tuple::from([2, 20]),
                Tuple::from([3, 10])
            ]
        );
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let mut r = Relation::from_rows(
            Schema::from_strs("R", &["x"]),
            vec![vec![5], vec![3], vec![5], vec![9], vec![3]],
        );
        r.dedup();
        assert_eq!(r.values(), &[5, 3, 9]);
    }

    #[test]
    fn nullary_relation_roundtrip() {
        let mut r = Relation::empty(Schema::new("N", vec![]));
        assert_eq!(r.arity(), 0);
        r.push_row(&[]);
        r.push_row(&[]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.iter().count(), 2);
        for row in r.iter() {
            assert!(row.is_empty());
        }
        r.dedup();
        assert_eq!(r.len(), 1);
        r.sort();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn append_merges_buffers() {
        let mut r = sample();
        let s = Relation::from_rows(Schema::from_strs("S", &["a", "b"]), vec![vec![7, 8]]);
        r.append(&s);
        assert_eq!(r.len(), 5);
        assert_eq!(r.row(4), &[7, 8]);
    }

    #[test]
    #[should_panic(expected = "cannot append")]
    fn append_arity_mismatch_panics() {
        let mut r = sample();
        r.append(&Relation::empty(Schema::from_strs("S", &["a"])));
    }

    #[test]
    fn projection() {
        let r = sample();
        let p = r.project(&["y".to_string()], "P");
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 4);
        let p = p.canonicalized();
        assert_eq!(p.to_tuples(), vec![Tuple::from([10]), Tuple::from([20])]);
        // Identity projection takes the fast path but must stay equivalent.
        let id = r.project(&["x".to_string(), "y".to_string()], "Q");
        assert_eq!(id.values(), r.values());
        assert_eq!(id.name(), "Q");
    }

    #[test]
    fn projection_reorders_and_repeats() {
        let r = sample();
        let p = r.project(&["y".to_string(), "x".to_string()], "P");
        assert_eq!(p.row(0), &[10, 1]);
    }

    #[test]
    fn push_row_projected_projects_in_place() {
        let mut out = Relation::empty(Schema::from_strs("P", &["b", "a"]));
        out.push_row_projected(&[1, 2, 3], &[2, 0]);
        assert_eq!(out.row(0), &[3, 1]);
    }

    #[test]
    fn selection() {
        let r = sample();
        assert_eq!(r.select_eq("x", 1).len(), 2);
        assert_eq!(r.select_eq("y", 20).len(), 1);
        assert_eq!(r.select_eq("y", 999).len(), 0);
    }

    #[test]
    fn degree_map_counts_frequencies() {
        let r = sample();
        let d = r.degree_map(&["y".to_string()]);
        assert_eq!(d[&Tuple::from([10])], 3);
        assert_eq!(d[&Tuple::from([20])], 1);
        assert_eq!(r.max_degree(&["y".to_string()]), 3);
        assert_eq!(r.max_degree(&["x".to_string(), "y".to_string()]), 2);
    }

    #[test]
    fn matching_detection() {
        let m = Relation::from_rows(
            Schema::from_strs("M", &["x", "y"]),
            vec![vec![1, 4], vec![2, 5], vec![3, 6]],
        );
        assert!(m.is_matching());
        assert!(!sample().is_matching());
        assert!(Relation::empty(Schema::from_strs("E", &["x"])).is_matching());
    }

    #[test]
    fn semijoin_and_antijoin() {
        let r = sample();
        let s = Relation::from_rows(Schema::from_strs("S", &["y", "z"]), vec![vec![10, 100]]);
        let semi = r.semijoin(&s);
        assert_eq!(semi.len(), 3);
        let anti = r.antijoin(&s);
        assert_eq!(anti.len(), 1);
        assert_eq!(anti.row(0), &[2, 20]);
        // Disjoint attributes: semijoin keeps everything iff other non-empty.
        let t = Relation::from_rows(Schema::from_strs("T", &["w"]), vec![vec![7]]);
        assert_eq!(r.semijoin(&t).len(), r.len());
        assert_eq!(r.antijoin(&t).len(), 0);
        let empty_t = Relation::empty(Schema::from_strs("T", &["w"]));
        assert_eq!(r.semijoin(&empty_t).len(), 0);
        assert_eq!(r.antijoin(&empty_t).len(), r.len());
    }

    #[test]
    fn attribute_renaming() {
        let r = sample();
        let mut mapping = HashMap::new();
        mapping.insert("x".to_string(), "a".to_string());
        let renamed = r.with_attributes_renamed(&mapping);
        assert_eq!(
            renamed.schema().attributes(),
            &["a".to_string(), "y".to_string()]
        );
        assert_eq!(renamed.values(), r.values());
    }

    #[test]
    fn with_schema_rebinds_columns() {
        let r = sample();
        let bound = r.with_schema(Schema::from_strs("R", &["u", "v"]));
        assert_eq!(bound.schema().attributes(), &["u".to_string(), "v".to_string()]);
        assert_eq!(bound.values(), r.values());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn with_schema_arity_mismatch_panics() {
        sample().with_schema(Schema::from_strs("R", &["u"]));
    }

    #[test]
    fn filter_with_predicate() {
        let r = sample();
        let f = r.filter(|t| t[0] + t[1] > 20);
        assert_eq!(f.len(), 1);
        assert_eq!(f.row(0), &[2, 20]);
    }
}
