//! Crate-internal hash index over the rows of a flat [`Relation`], keyed by
//! a subset of column positions. This is the build side of the hash join and
//! the key set of semijoin/antijoin: no key tuple is ever materialised —
//! keys are hashed in place with [`crate::hash::hash_key`] and equal hashes
//! are verified by comparing the key positions of the stored rows.

use crate::hash::{hash_key, PrehashedBuild};
use crate::relation::Relation;
use crate::tuple::Value;
use std::collections::HashMap;

const NONE: u32 = u32::MAX;

/// A chained hash index: `map` takes a key hash to the most recent row with
/// that hash plus the number of rows sharing it; `next` chains the earlier
/// rows. Row ids index into the indexed relation.
pub(crate) struct RowKeyIndex {
    map: HashMap<u64, (u32, u32), PrehashedBuild>,
    next: Vec<u32>,
}

impl RowKeyIndex {
    /// Index every row of `relation` by the values at `key_positions`.
    pub(crate) fn build(relation: &Relation, key_positions: &[usize]) -> Self {
        assert!(
            relation.len() < NONE as usize,
            "RowKeyIndex supports at most {} rows, relation `{}` has {}",
            NONE,
            relation.name(),
            relation.len()
        );
        let mut map: HashMap<u64, (u32, u32), PrehashedBuild> =
            HashMap::with_capacity_and_hasher(relation.len(), PrehashedBuild);
        let mut next = vec![NONE; relation.len()];
        for (i, row) in relation.iter().enumerate() {
            let h = hash_key(row, key_positions);
            match map.entry(h) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (head, count) = *e.get();
                    next[i] = head;
                    *e.get_mut() = (i as u32, count + 1);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((i as u32, 1));
                }
            }
        }
        RowKeyIndex { map, next }
    }

    /// Number of indexed rows whose key hash equals `hash` (an upper bound
    /// on the true match count, exact except on 64-bit hash collisions).
    /// Used to pre-size join outputs.
    pub(crate) fn count_for_hash(&self, hash: u64) -> usize {
        self.map.get(&hash).map(|&(_, c)| c as usize).unwrap_or(0)
    }

    /// Iterate the row ids whose key hash equals `hash` (callers verify the
    /// actual key values).
    pub(crate) fn candidates(&self, hash: u64) -> Candidates<'_> {
        Candidates {
            next: &self.next,
            current: self.map.get(&hash).map(|&(head, _)| head).unwrap_or(NONE),
        }
    }

    /// True when some indexed row agrees with `probe_row` on the key: the
    /// indexed relation's `key_positions` against the probe's
    /// `probe_positions` (both in the same key order).
    pub(crate) fn contains(
        &self,
        indexed: &Relation,
        key_positions: &[usize],
        probe_row: &[Value],
        probe_positions: &[usize],
    ) -> bool {
        let h = hash_key(probe_row, probe_positions);
        self.candidates(h).any(|i| {
            let row = indexed.row(i);
            key_positions
                .iter()
                .zip(probe_positions.iter())
                .all(|(&kp, &pp)| row[kp] == probe_row[pp])
        })
    }
}

/// Iterator over the chained row ids of one hash bucket.
pub(crate) struct Candidates<'a> {
    next: &'a [u32],
    current: u32,
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.current == NONE {
            return None;
        }
        let i = self.current as usize;
        self.current = self.next[i];
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn index_finds_all_rows_for_a_key() {
        let r = Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            vec![vec![1, 10], vec![2, 20], vec![1, 30]],
        );
        let idx = RowKeyIndex::build(&r, &[0]);
        let h = crate::hash::hash_values(&[1]);
        assert_eq!(idx.count_for_hash(h), 2);
        let mut rows: Vec<usize> = idx.candidates(h).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 2]);
        assert!(idx.contains(&r, &[0], &[99, 1], &[1]));
        assert!(!idx.contains(&r, &[0], &[99, 5], &[1]));
    }
}
