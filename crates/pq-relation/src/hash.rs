//! Seeded hash families used by the HyperCube partitioning.
//!
//! The paper's load analysis (Lemma 3.2, Appendix A) assumes independent,
//! "perfectly random" hash functions — in practice a strongly universal
//! family. We provide two classic constructions:
//!
//! * [`MultiplyShiftHash`] — the `(a·x + b) mod 2^64 >> shift` family of
//!   Dietzfelbinger et al., 2-independent, extremely fast;
//! * [`TabulationHash`] — simple tabulation hashing, 3-independent and with
//!   Chernoff-style concentration guarantees that closely track truly random
//!   functions (Pătraşcu–Thorup), used as the ablation alternative.
//!
//! Both map a [`Value`] to a bucket in `[0, buckets)`. A [`HashFamily`]
//! produces independent functions from a seed, one per query variable, as
//! the HyperCube algorithm requires (`h_1, …, h_k`).

use crate::tuple::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A hash function from domain values to buckets `[0, buckets)`.
pub trait BucketHasher: Send + Sync {
    /// Hash `value` into a bucket.
    fn bucket(&self, value: Value) -> usize;
    /// The number of buckets.
    fn buckets(&self) -> usize;
}

/// A family of independent bucket hashers, seeded deterministically.
pub trait HashFamily {
    /// The hasher type produced by this family.
    type Hasher: BucketHasher;
    /// Create the `index`-th independent hash function with the given number
    /// of buckets. Different indices yield (pseudo-)independent functions;
    /// the same `(seed, index, buckets)` always yields the same function.
    fn hasher(&self, index: usize, buckets: usize) -> Self::Hasher;
}

/// Multiply-shift hashing: `h(x) = ((a * x + b) >> s) mod buckets` with odd
/// random `a`. 2-universal; the workhorse hash of the HyperCube shuffle.
#[derive(Debug, Clone)]
pub struct MultiplyShiftHash {
    seed: u64,
}

/// A single multiply-shift hash function.
#[derive(Debug, Clone)]
pub struct MultiplyShiftHasher {
    a: u64,
    b: u64,
    buckets: usize,
}

impl MultiplyShiftHash {
    /// Create a family from a seed.
    pub fn new(seed: u64) -> Self {
        MultiplyShiftHash { seed }
    }
}

impl HashFamily for MultiplyShiftHash {
    type Hasher = MultiplyShiftHasher;

    fn hasher(&self, index: usize, buckets: usize) -> MultiplyShiftHasher {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let a: u64 = rng.gen::<u64>() | 1; // must be odd
        let b: u64 = rng.gen();
        MultiplyShiftHasher {
            a,
            b,
            buckets: buckets.max(1),
        }
    }
}

impl BucketHasher for MultiplyShiftHasher {
    fn bucket(&self, value: Value) -> usize {
        // Multiply-shift into the top bits, then map to the bucket range by
        // the fixed-point multiplication trick (unbiased for bucket counts
        // far below 2^32, which always holds here).
        let h = value.wrapping_mul(self.a).wrapping_add(self.b);
        let top = h >> 32;
        ((top * self.buckets as u64) >> 32) as usize
    }

    fn buckets(&self) -> usize {
        self.buckets
    }
}

/// Simple tabulation hashing over the 8 bytes of a value.
#[derive(Debug, Clone)]
pub struct TabulationHash {
    seed: u64,
}

/// A single tabulation hash function: 8 tables of 256 random words.
#[derive(Debug, Clone)]
pub struct TabulationHasher {
    tables: Box<[[u64; 256]; 8]>,
    buckets: usize,
}

impl TabulationHash {
    /// Create a family from a seed.
    pub fn new(seed: u64) -> Self {
        TabulationHash { seed }
    }
}

impl HashFamily for TabulationHash {
    type Hasher = TabulationHasher;

    fn hasher(&self, index: usize, buckets: usize) -> TabulationHasher {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = rng.gen();
            }
        }
        TabulationHasher {
            tables,
            buckets: buckets.max(1),
        }
    }
}

impl BucketHasher for TabulationHasher {
    fn bucket(&self, value: Value) -> usize {
        let mut h = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            let byte = ((value >> (8 * i)) & 0xFF) as usize;
            h ^= table[byte];
        }
        let top = h >> 32;
        ((top * self.buckets as u64) >> 32) as usize
    }

    fn buckets(&self) -> usize {
        self.buckets
    }
}

/// Finalizing 64-bit mixer (the splitmix64 finalizer): diffuses every input
/// bit over the whole output word. Used to turn accumulated row state into a
/// well-distributed hash.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Hash a row (or key) slice of values with an FxHash-style multiply-rotate
/// accumulator followed by [`mix64`]. This is the hash of the join/shuffle
/// hot path: it reads the values in place — no key tuple is materialised —
/// and costs one multiply and one rotate per value.
#[inline]
pub fn hash_values(values: &[Value]) -> u64 {
    let mut h: u64 = 0x51_7C_C1_B7_27_22_0A_95;
    for &v in values {
        h = (h.rotate_left(5) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    mix64(h ^ values.len() as u64)
}

/// Hash the values of `row` at the given positions (a join key) without
/// materialising the key: the projection happens inside the accumulator.
#[inline]
pub fn hash_key(row: &[Value], positions: &[usize]) -> u64 {
    let mut h: u64 = 0x51_7C_C1_B7_27_22_0A_95;
    for &p in positions {
        h = (h.rotate_left(5) ^ row[p]).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    mix64(h ^ positions.len() as u64)
}

/// A `BuildHasher` for `HashMap`s keyed by **already-mixed** `u64` hashes
/// (the outputs of [`hash_values`]/[`hash_key`]): the hasher passes the key
/// through unchanged, so map operations cost no additional hashing. Do not
/// use it with keys that are not themselves hash outputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrehashedBuild;

/// The [`std::hash::Hasher`] produced by [`PrehashedBuild`]: records the
/// single `u64` written to it and returns it verbatim.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrehashedHasher(u64);

impl std::hash::Hasher for PrehashedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (never taken on the hot paths).
        for &b in bytes {
            self.0 = (self.0.rotate_left(8) ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }
}

impl std::hash::BuildHasher for PrehashedBuild {
    type Hasher = PrehashedHasher;

    fn build_hasher(&self) -> PrehashedHasher {
        PrehashedHasher(0)
    }
}

/// Convenience: build the `k` independent hashers `h_1, …, h_k` with bucket
/// counts `shares[i]`, as the HyperCube algorithm requires (one hash per
/// query variable with range equal to that variable's share).
pub fn hypercube_hashers<F: HashFamily>(
    family: &F,
    shares: &[usize],
) -> Vec<F::Hasher> {
    shares
        .iter()
        .enumerate()
        .map(|(i, &s)| family.hasher(i, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn check_determinism<F: HashFamily>(family: &F) {
        let h1 = family.hasher(0, 16);
        let h2 = family.hasher(0, 16);
        for v in 0..1000u64 {
            assert_eq!(h1.bucket(v), h2.bucket(v));
        }
    }

    fn check_range<F: HashFamily>(family: &F, buckets: usize) {
        let h = family.hasher(3, buckets);
        assert_eq!(h.buckets(), buckets);
        for v in 0..10_000u64 {
            assert!(h.bucket(v) < buckets);
        }
    }

    fn check_balance<F: HashFamily>(family: &F) {
        // Hashing 64k consecutive integers into 16 buckets should put
        // roughly 4096 in each; allow a generous 25% deviation.
        let buckets = 16;
        let h = family.hasher(7, buckets);
        let mut counts = vec![0usize; buckets];
        for v in 0..65_536u64 {
            counts[h.bucket(v)] += 1;
        }
        let expected = 65_536 / buckets;
        for &c in &counts {
            assert!(
                (c as f64 - expected as f64).abs() < 0.25 * expected as f64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    fn check_independence_across_indices<F: HashFamily>(family: &F) {
        // Different indices should give different functions.
        let h0 = family.hasher(0, 1024);
        let h1 = family.hasher(1, 1024);
        let differing = (0..1000u64).filter(|&v| h0.bucket(v) != h1.bucket(v)).count();
        assert!(differing > 900, "functions for different indices look identical");
    }

    #[test]
    fn multiply_shift_properties() {
        let f = MultiplyShiftHash::new(42);
        check_determinism(&f);
        check_range(&f, 13);
        check_balance(&f);
        check_independence_across_indices(&f);
    }

    #[test]
    fn tabulation_properties() {
        let f = TabulationHash::new(42);
        check_determinism(&f);
        check_range(&f, 13);
        check_balance(&f);
        check_independence_across_indices(&f);
    }

    #[test]
    fn single_bucket_always_zero() {
        let f = MultiplyShiftHash::new(1);
        let h = f.hasher(0, 1);
        for v in 0..100u64 {
            assert_eq!(h.bucket(v), 0);
        }
    }

    #[test]
    fn hypercube_hashers_respect_shares() {
        let f = MultiplyShiftHash::new(5);
        let hashers = hypercube_hashers(&f, &[2, 3, 4]);
        assert_eq!(hashers.len(), 3);
        assert_eq!(hashers[0].buckets(), 2);
        assert_eq!(hashers[1].buckets(), 3);
        assert_eq!(hashers[2].buckets(), 4);
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let f1 = MultiplyShiftHash::new(1);
        let f2 = MultiplyShiftHash::new(2);
        let h1 = f1.hasher(0, 1024);
        let h2 = f2.hasher(0, 1024);
        let differing = (0..1000u64).filter(|&v| h1.bucket(v) != h2.bucket(v)).count();
        assert!(differing > 900);
    }

    #[test]
    fn row_hash_is_deterministic_and_length_sensitive() {
        assert_eq!(hash_values(&[1, 2, 3]), hash_values(&[1, 2, 3]));
        assert_ne!(hash_values(&[1, 2]), hash_values(&[2, 1]));
        assert_ne!(hash_values(&[0]), hash_values(&[0, 0]));
        assert_ne!(hash_values(&[]), hash_values(&[0]));
    }

    #[test]
    fn hash_key_matches_hash_of_projected_values() {
        let row = [10u64, 20, 30, 40];
        assert_eq!(hash_key(&row, &[2, 0]), hash_values(&[30, 10]));
        assert_eq!(hash_key(&row, &[]), hash_values(&[]));
    }

    #[test]
    fn prehashed_map_roundtrips() {
        let mut map: HashMap<u64, usize, PrehashedBuild> = HashMap::default();
        for v in 0..1000u64 {
            map.insert(hash_values(&[v]), v as usize);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&hash_values(&[7])], 7);
    }

    #[test]
    fn collision_rate_is_near_uniform() {
        // 2-universality: Pr[h(x)=h(y)] ~ 1/buckets for x != y.
        let f = MultiplyShiftHash::new(99);
        let buckets = 64;
        let h = f.hasher(0, buckets);
        let values: Vec<u64> = (0..2_000).map(|i| i * 2_654_435_761 % 1_000_003).collect();
        let mut by_bucket: HashMap<usize, usize> = HashMap::new();
        for &v in &values {
            *by_bucket.entry(h.bucket(v)).or_default() += 1;
        }
        let pairs_same_bucket: usize = by_bucket.values().map(|&c| c * (c - 1) / 2).sum();
        let total_pairs = values.len() * (values.len() - 1) / 2;
        let rate = pairs_same_bucket as f64 / total_pairs as f64;
        assert!((rate - 1.0 / buckets as f64).abs() < 0.5 / buckets as f64);
    }
}
