//! The persistent executor pool behind the query hot path.
//!
//! The MPC cost model charges only communication, but the simulator and the
//! cluster workers still have to *perform* the local joins. Before this
//! crate existed, every round of every query spawned a fresh set of OS
//! threads (`std::thread::scope`) and funnelled results through a contended
//! mutex; a panicking task poisoned that mutex and surfaced as
//! `"result lock poisoned"` instead of the original panic. A [`TaskPool`]
//! replaces all of that with long-lived parked workers:
//!
//! ```text
//!               map_indexed(&items, f)
//!                        │  split into fixed-size chunks ("morsels")
//!                        ▼
//!        ┌──────────── injector ────────────┐      global FIFO queue
//!        │        ┌─ local[0] ─┐            │      per-worker queues
//!        │        │  local[1]  │ …          │
//!        ▼        ▼            ▼            ▼
//!     caller   worker 0     worker 1  …  worker N-1
//!     (helps)  (parked on a condvar until work arrives)
//! ```
//!
//! * **Zero per-query thread spawns.** Workers are spawned once at pool
//!   construction and parked on a condvar between queries;
//!   [`PoolStats::threads_spawned`] stays flat no matter how many maps run.
//! * **Work stealing.** Tasks are dealt round-robin over the injector and
//!   the per-worker queues; a worker pops its own queue first, then the
//!   injector, then steals from a sibling (counted on
//!   [`PoolStats::steals`]).
//! * **Deterministic output.** [`TaskPool::map_indexed`] writes each
//!   chunk's results into a disjoint slice of one pre-sized output vector,
//!   so the caller sees results in input order regardless of scheduling.
//! * **The caller helps.** While waiting for its scope the calling thread
//!   executes queued tasks itself, which makes nested `map_indexed` calls
//!   (a parallel join inside a parallel per-server map) deadlock-free.
//! * **Clean panic propagation.** A panicking task is caught, its payload
//!   stored, and re-thrown on the calling thread via
//!   [`std::panic::resume_unwind`] once the scope has drained — the pool
//!   itself stays usable afterwards.
//! * **Inline fast path.** A pool of size 1 spawns no threads at all and
//!   runs every map as a plain sequential loop — single-core machines pay
//!   nothing for the machinery.
//!
//! Pools are reached either explicitly (the engine owns one) or through
//! the rayon-style ambient mechanism: [`TaskPool::install`] marks a pool
//! as the thread's *current* pool for the duration of a closure, and
//! library code deep in the stack (the morsel-parallel join kernels in
//! `pq-relation`, the per-server fan-out in `pq-mpc`) picks it up with
//! [`current`] without threading a handle through every signature.
//! [`global`] lazily builds one process-wide fallback pool sized from the
//! `PQ_THREADS` environment variable (default: `available_parallelism`).

#![deny(missing_docs)]

use pq_obs::{Counter, Gauge, MetricsRegistry};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, Weak};
use std::thread::JoinHandle;

/// Target number of tasks per pool thread when `map_indexed` chunks its
/// input: a few tasks per thread keeps the queues busy enough for stealing
/// to balance skewed chunks, while keeping tasks coarse enough that the
/// single scheduler lock never becomes the bottleneck.
const TASKS_PER_THREAD: usize = 4;

/// A queued unit of work. The `'static` bound is produced by the audited
/// lifetime erasure in [`TaskPool::map_indexed`] — see the safety comment
/// there for why it is sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Lock a mutex ignoring poisoning: every task body is wrapped in
/// `catch_unwind`, so the protected queues are structurally valid after any
/// panic, and the pool must stay usable (resume-safe) afterwards.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The scheduler state: one global injector queue plus one queue per
/// worker, all behind a single mutex (tasks are coarse morsels, so the
/// lock is taken a handful of times per task, not per row).
struct Sched {
    injector: VecDeque<Job>,
    locals: Vec<VecDeque<Job>>,
    /// Queued-but-not-started tasks across all queues (the queue-depth
    /// gauge).
    depth: usize,
    /// Set once by [`TaskPool`]'s `Drop`; workers exit at the next wakeup.
    shutdown: bool,
}

/// Per-scope completion state for one `map_indexed` call.
struct ScopeState {
    /// Tasks of this scope that have not finished yet. Decremented under
    /// the scheduler lock so a waiter that just checked it cannot miss the
    /// wakeup.
    pending: AtomicUsize,
    /// First panic payload raised by a task of this scope, re-thrown on
    /// the calling thread once the scope has drained.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Registry-resolved mirrors of the pool's internal counters, attached at
/// most once per pool (the engine attaches its own registry so `pqd
/// METRICS` exposes the pool next to the query counters).
struct ExecMetrics {
    tasks: Counter,
    steals: Counter,
    spawned: Counter,
    pool_size: Gauge,
    queue_depth: Gauge,
}

/// State shared between the pool handle and its worker threads. Workers
/// hold a strong reference so the queues outlive the handle during
/// shutdown; the handle's `Drop` flips [`Sched::shutdown`] and joins them.
struct Shared {
    sched: Mutex<Sched>,
    /// Workers park here between queries; pushed work, finished tasks and
    /// shutdown all notify it.
    work: Condvar,
    tasks: AtomicU64,
    steals: AtomicU64,
    spawned: AtomicU64,
    threads: usize,
    /// Back-reference to the owning [`TaskPool`], so worker threads can
    /// mark the pool as their ambient *current* pool (nested maps inside a
    /// task then parallelise too). Weak: workers must not keep the pool
    /// alive.
    self_ref: OnceLock<Weak<TaskPool>>,
    metrics: OnceLock<ExecMetrics>,
}

impl Shared {
    fn wait<'a>(&self, guard: MutexGuard<'a, Sched>) -> MutexGuard<'a, Sched> {
        self.work
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Deal `jobs` round-robin over the injector and the worker queues,
    /// then wake everyone.
    fn push_jobs(&self, jobs: Vec<Job>) {
        let count = jobs.len();
        let mut guard = lock_unpoisoned(&self.sched);
        let queues = guard.locals.len() + 1;
        for (j, job) in jobs.into_iter().enumerate() {
            match j % queues {
                0 => guard.injector.push_back(job),
                slot => guard.locals[slot - 1].push_back(job),
            }
        }
        guard.depth += count;
        self.tasks.fetch_add(count as u64, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.tasks.add(count as u64);
            m.queue_depth.set(guard.depth as u64);
        }
        drop(guard);
        self.work.notify_all();
    }

    fn note_pop(&self, guard: &mut MutexGuard<'_, Sched>, stolen: bool) {
        guard.depth -= 1;
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(m) = self.metrics.get() {
            if stolen {
                m.steals.inc();
            }
            m.queue_depth.set(guard.depth as u64);
        }
    }

    /// Worker `me`'s pop order: own queue, injector, then steal from a
    /// sibling's queue (back end, classic steal side).
    fn pop_worker(&self, guard: &mut MutexGuard<'_, Sched>, me: usize) -> Option<Job> {
        if let Some(job) = guard.locals[me].pop_front() {
            self.note_pop(guard, false);
            return Some(job);
        }
        if let Some(job) = guard.injector.pop_front() {
            self.note_pop(guard, false);
            return Some(job);
        }
        let siblings = guard.locals.len();
        let job = (0..siblings)
            .filter(|&other| other != me)
            .find_map(|other| guard.locals[other].pop_back());
        if job.is_some() {
            self.note_pop(guard, true);
        }
        job
    }

    /// A non-worker (the caller helping its own scope along) pops the
    /// injector first and otherwise steals from any worker queue.
    fn pop_helper(&self, guard: &mut MutexGuard<'_, Sched>) -> Option<Job> {
        if let Some(job) = guard.injector.pop_front() {
            self.note_pop(guard, false);
            return Some(job);
        }
        let job = guard.locals.iter_mut().find_map(VecDeque::pop_back);
        if job.is_some() {
            self.note_pop(guard, true);
        }
        job
    }

    /// Run queued tasks on the calling thread until `scope` has drained;
    /// park on the condvar while other threads hold the last tasks.
    fn help_until(&self, scope: &ScopeState) {
        let mut guard = lock_unpoisoned(&self.sched);
        loop {
            if scope.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(job) = self.pop_helper(&mut guard) {
                drop(guard);
                job();
                guard = lock_unpoisoned(&self.sched);
            } else {
                guard = self.wait(guard);
            }
        }
    }
}

/// The long-lived worker body: park until work or shutdown, run tasks with
/// the pool marked as the thread's current pool.
fn worker_loop(shared: Arc<Shared>, me: usize) {
    let mut marked = false;
    let mut guard = lock_unpoisoned(&shared.sched);
    loop {
        if guard.shutdown {
            return;
        }
        match shared.pop_worker(&mut guard, me) {
            Some(job) => {
                drop(guard);
                if !marked {
                    // Permanently mark this thread as belonging to the
                    // pool, so a task that itself calls a parallel kernel
                    // (nested map) finds the pool via `current()`. The
                    // back-reference is set right after construction,
                    // before any task can be queued.
                    if let Some(weak) = shared.self_ref.get() {
                        CURRENT.with(|c| c.borrow_mut().push(weak.clone()));
                        marked = true;
                    }
                }
                job();
                guard = lock_unpoisoned(&shared.sched);
            }
            None => guard = shared.wait(guard),
        }
    }
}

/// A pool of `threads - 1` persistent worker threads plus the helping
/// caller: `threads` is the total parallelism of a map. See the crate docs
/// for the architecture; see [`TaskPool::map_indexed`] for the one
/// execution primitive everything else is built from.
pub struct TaskPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPool")
            .field("threads", &self.shared.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A point-in-time snapshot of a pool's internal counters — the same
/// numbers [`TaskPool::attach_registry`] mirrors as `pq_exec_*` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks ever scheduled on the pool.
    pub tasks: u64,
    /// Tasks taken from another worker's queue.
    pub steals: u64,
    /// Worker threads ever spawned. Constant after construction: the
    /// warm-query-path invariant asserted by tests and the CI smoke.
    pub threads_spawned: u64,
    /// Configured parallelism (worker threads + the helping caller).
    pub pool_size: usize,
    /// Tasks currently queued and not yet started.
    pub queue_depth: usize,
}

impl TaskPool {
    /// Build a pool of total parallelism `threads` (clamped to at least 1):
    /// `threads - 1` worker threads are spawned immediately and parked; the
    /// thread calling [`TaskPool::map_indexed`] contributes the final unit
    /// of parallelism by helping. `TaskPool::new(1)` spawns no threads and
    /// maps inline.
    pub fn new(threads: usize) -> Arc<TaskPool> {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                injector: VecDeque::new(),
                locals: (0..workers).map(|_| VecDeque::new()).collect(),
                depth: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            spawned: AtomicU64::new(0),
            threads,
            self_ref: OnceLock::new(),
            metrics: OnceLock::new(),
        });
        let pool = Arc::new(TaskPool {
            shared: Arc::clone(&shared),
            handles: Mutex::new(Vec::new()),
        });
        let _ = shared.self_ref.set(Arc::downgrade(&pool));
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let worker_shared = Arc::clone(&shared);
            shared.spawned.fetch_add(1, Ordering::Relaxed);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pq-exec-{me}"))
                    .spawn(move || worker_loop(worker_shared, me))
                    .expect("spawn pq-exec worker thread"),
            );
        }
        *lock_unpoisoned(&pool.handles) = handles;
        pool
    }

    /// Total parallelism of the pool (worker threads + helping caller).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Apply `f` to every indexed item of `items` in parallel and return
    /// the outputs **in input order** — the same outputs, in the same
    /// order, at any pool size.
    ///
    /// The input is split into fixed-size chunks (a few per pool thread);
    /// each chunk writes its results into a disjoint slice of one
    /// pre-sized output vector, so no result ever crosses a lock. The
    /// calling thread executes queued chunks itself while it waits, which
    /// makes nested calls from inside a task safe. If a task panics, the
    /// first panic payload is re-thrown here once all chunks have drained;
    /// the pool remains usable.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Inline fast path: a size-1 pool (or a single item) runs the plain
        // sequential loop — no queue, no lock, no condvar.
        if self.shared.threads <= 1 || n == 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = n.div_ceil(self.shared.threads * TASKS_PER_THREAD).max(1);
        let tasks = n.div_ceil(chunk);
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let scope = Arc::new(ScopeState {
            pending: AtomicUsize::new(tasks),
            panic: Mutex::new(None),
        });
        let f_ref = &f;
        let jobs: Vec<Job> = items
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
            .map(|(j, (in_chunk, out_chunk))| {
                let scope = Arc::clone(&scope);
                let shared = Arc::clone(&self.shared);
                let base = j * chunk;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        for (k, (item, slot)) in
                            in_chunk.iter().zip(out_chunk.iter_mut()).enumerate()
                        {
                            *slot = Some(f_ref(base + k, item));
                        }
                    }));
                    if let Err(payload) = run {
                        let mut first = lock_unpoisoned(&scope.panic);
                        if first.is_none() {
                            *first = Some(payload);
                        }
                    }
                    // Decrement under the scheduler lock so a waiter that
                    // just observed pending > 0 cannot miss the wakeup.
                    let guard = lock_unpoisoned(&shared.sched);
                    scope.pending.fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                    shared.work.notify_all();
                });
                // SAFETY: the closure borrows `items`, `results` and `f`,
                // which live on this stack frame, so its true type is
                // `Box<dyn FnOnce() + Send + 'frame>`. Erasing the lifetime
                // to `'static` is sound because `help_until` below does not
                // return until `scope.pending` reaches zero — i.e. until
                // every one of these closures has finished running (a
                // panicking closure still decrements) — and unqueued
                // closures cannot outlive the queue drain either, because
                // pending counts *all* of them. No borrow escapes the call.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
            })
            .collect();
        self.shared.push_jobs(jobs);
        self.shared.help_until(&scope);
        if let Some(payload) = lock_unpoisoned(&scope.panic).take() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("drained scope filled every slot"))
            .collect()
    }

    /// Run `f` with this pool as the thread's *current* pool: parallel
    /// kernels deep in the stack (morsel joins, per-server maps) reach it
    /// via [`current`] for the duration. Installs nest; the previous
    /// current pool is restored on exit, panic included.
    pub fn install<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        CURRENT.with(|c| c.borrow_mut().push(Arc::downgrade(self)));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let _restore = PopGuard;
        f()
    }

    /// Snapshot the pool's internal counters.
    pub fn stats(&self) -> PoolStats {
        let depth = lock_unpoisoned(&self.shared.sched).depth;
        PoolStats {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            threads_spawned: self.shared.spawned.load(Ordering::Relaxed),
            pool_size: self.shared.threads,
            queue_depth: depth,
        }
    }

    /// Mirror the pool's counters into `registry` as `pq_exec_tasks_total`,
    /// `pq_exec_steals_total`, `pq_exec_threads_spawned_total` and the
    /// `pq_exec_pool_size` / `pq_exec_queue_depth` gauges. The first call
    /// wins (a pool mirrors into at most one registry); counts accumulated
    /// before attachment are carried over.
    pub fn attach_registry(&self, registry: &MetricsRegistry) {
        // Initialised under the scheduler lock: every counter move also
        // happens under it, so the carry-over below cannot double-count.
        let guard = lock_unpoisoned(&self.shared.sched);
        self.shared.metrics.get_or_init(|| {
            let metrics = ExecMetrics {
                tasks: registry.counter(
                    "pq_exec_tasks_total",
                    &[],
                    "Tasks scheduled on the persistent executor pool",
                ),
                steals: registry.counter(
                    "pq_exec_steals_total",
                    &[],
                    "Pool tasks taken from another worker's queue",
                ),
                spawned: registry.counter(
                    "pq_exec_threads_spawned_total",
                    &[],
                    "Pool worker threads ever spawned (flat across queries)",
                ),
                pool_size: registry.gauge(
                    "pq_exec_pool_size",
                    &[],
                    "Configured executor-pool parallelism, helping caller included",
                ),
                queue_depth: registry.gauge(
                    "pq_exec_queue_depth",
                    &[],
                    "Pool tasks currently queued and not yet started",
                ),
            };
            metrics.tasks.add(self.shared.tasks.load(Ordering::Relaxed));
            metrics
                .steals
                .add(self.shared.steals.load(Ordering::Relaxed));
            metrics
                .spawned
                .add(self.shared.spawned.load(Ordering::Relaxed));
            metrics.pool_size.set(self.shared.threads as u64);
            metrics.queue_depth.set(guard.depth as u64);
            metrics
        });
        drop(guard);
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        {
            let mut guard = lock_unpoisoned(&self.shared.sched);
            guard.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in lock_unpoisoned(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

thread_local! {
    /// The stack of installed pools for this thread (weak: an installed
    /// pool must still be droppable from another thread).
    static CURRENT: RefCell<Vec<Weak<TaskPool>>> = const { RefCell::new(Vec::new()) };
}

/// The thread's current pool: the innermost live [`TaskPool::install`] on
/// this thread, or — on a pool worker thread — the worker's own pool.
/// `None` outside any install, in which case parallel kernels fall back to
/// their sequential paths or to [`global`].
pub fn current() -> Option<Arc<TaskPool>> {
    CURRENT.with(|c| c.borrow().last().and_then(Weak::upgrade))
}

static GLOBAL: OnceLock<Arc<TaskPool>> = OnceLock::new();

/// The lazily-built process-wide fallback pool, sized by
/// [`default_threads`] on first use. Used by callers with no engine in
/// sight (library tests, the shim over the legacy `map_servers_parallel`
/// entry point).
pub fn global() -> Arc<TaskPool> {
    Arc::clone(GLOBAL.get_or_init(|| TaskPool::new(default_threads())))
}

/// The thread's current pool if one is installed, else the global pool.
pub fn current_or_global() -> Arc<TaskPool> {
    current().unwrap_or_else(global)
}

/// The default pool size: the `PQ_THREADS` environment variable when it
/// parses as a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    parse_threads(std::env::var("PQ_THREADS").ok())
}

fn parse_threads(var: Option<String>) -> usize {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order_at_every_pool_size() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 3 + i as u64).collect();
        for threads in 1..=8 {
            let pool = TaskPool::new(threads);
            let out = pool.map_indexed(&items, |i, &x| x * 3 + i as u64);
            assert_eq!(out, expected, "pool size {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = TaskPool::new(4);
        let empty: Vec<u32> = pool.map_indexed(&Vec::<u32>::new(), |_, &x| x);
        assert!(empty.is_empty());
        assert_eq!(pool.map_indexed(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn size_one_pool_spawns_no_threads_and_counts_no_tasks() {
        let pool = TaskPool::new(1);
        let out = pool.map_indexed(&[1u64, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, 0, "inline path spawns nothing");
        assert_eq!(stats.tasks, 0, "inline path never queues");
        assert_eq!(stats.pool_size, 1);
    }

    #[test]
    fn threads_spawned_stays_flat_across_many_maps() {
        let pool = TaskPool::new(4);
        let after_build = pool.stats().threads_spawned;
        assert_eq!(after_build, 3, "N-1 workers for total parallelism N");
        let items: Vec<u64> = (0..256).collect();
        for _ in 0..50 {
            pool.map_indexed(&items, |_, &x| x + 1);
        }
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, after_build, "warm maps spawn nothing");
        assert!(stats.tasks > 0);
        assert_eq!(stats.queue_depth, 0, "scopes drain completely");
    }

    #[test]
    fn a_panicking_task_propagates_its_payload_and_the_pool_survives() {
        let pool = TaskPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(&items, |_, &x| {
                if x == 57 {
                    panic!("fragment 57 is cursed");
                }
                x
            })
        }))
        .expect_err("the task panic must reach the caller");
        let message = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("cursed"),
            "original payload, not a poisoned-lock error: {message}"
        );
        // Resume-safe: the same pool keeps working after the panic.
        let out = pool.map_indexed(&items, |_, &x| x + 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        let pool = TaskPool::new(3);
        let outer: Vec<u64> = (0..16).collect();
        let inner: Vec<u64> = (0..32).collect();
        let out = pool.map_indexed(&outer, |_, &o| {
            // Runs on a worker (or the helping caller); the nested map must
            // make progress rather than park every thread.
            let sums = current_or_global().map_indexed(&inner, |_, &i| o * 100 + i);
            sums.iter().sum::<u64>()
        });
        for (o, total) in out.iter().enumerate() {
            let o = o as u64;
            assert_eq!(*total, (0..32).map(|i| o * 100 + i).sum::<u64>());
        }
    }

    #[test]
    fn worker_queues_are_stolen_from_when_their_owner_is_busy() {
        // 24 items at 3 threads chunk into 12 tasks over 3 queues
        // (injector, local 0, local 1). The first item of the task dealt to
        // local 0 blocks until every item outside its own chunk is done, so
        // whoever popped it cannot run the rest of local 0 — those tasks
        // *must* be stolen (by a sibling worker or the helping caller).
        let threads = 3;
        let items: Vec<u64> = (0..24).collect();
        let chunk = items.len().div_ceil(threads * TASKS_PER_THREAD).max(1);
        assert_eq!(chunk, 2, "test assumes 2-item chunks");
        let blocker = chunk as u64; // first item of the second task
        let done = AtomicUsize::new(0);
        let pool = TaskPool::new(threads);
        pool.map_indexed(&items, |_, &x| {
            if x == blocker {
                while done.load(Ordering::SeqCst) < items.len() - chunk {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert!(
            pool.stats().steals >= 1,
            "blocked owner forces at least one steal: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn install_sets_and_restores_the_current_pool() {
        assert!(current().is_none());
        let a = TaskPool::new(2);
        let b = TaskPool::new(2);
        a.install(|| {
            assert!(Arc::ptr_eq(&current().unwrap(), &a));
            b.install(|| assert!(Arc::ptr_eq(&current().unwrap(), &b)));
            assert!(Arc::ptr_eq(&current().unwrap(), &a), "inner install popped");
        });
        assert!(current().is_none(), "outer install popped");
        // Restored even when the closure panics.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            a.install(|| panic!("boom"));
        }));
        assert!(current().is_none());
    }

    #[test]
    fn attach_registry_mirrors_counters_and_carries_over() {
        let pool = TaskPool::new(3);
        let items: Vec<u64> = (0..64).collect();
        pool.map_indexed(&items, |_, &x| x); // tasks before attachment
        let registry = MetricsRegistry::new();
        pool.attach_registry(&registry);
        let carried = registry.counter_value("pq_exec_tasks_total", &[]);
        assert!(carried > 0, "pre-attachment tasks carried over");
        assert_eq!(
            registry.counter_value("pq_exec_threads_spawned_total", &[]),
            2
        );
        pool.map_indexed(&items, |_, &x| x);
        assert!(
            registry.counter_value("pq_exec_tasks_total", &[]) > carried,
            "post-attachment tasks mirror live"
        );
    }

    #[test]
    fn parse_threads_prefers_the_env_value_and_rejects_garbage() {
        assert_eq!(parse_threads(Some("3".into())), 3);
        assert_eq!(parse_threads(Some(" 5 ".into())), 5);
        let fallback = parse_threads(None);
        assert!(fallback >= 1);
        assert_eq!(parse_threads(Some("0".into())), fallback);
        assert_eq!(parse_threads(Some("lots".into())), fallback);
    }

    #[test]
    fn global_pool_is_one_process_wide_instance() {
        let g1 = global();
        let g2 = global();
        assert!(Arc::ptr_eq(&g1, &g2));
        assert!(g1.threads() >= 1);
    }
}
