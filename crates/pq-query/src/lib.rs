//! Conjunctive-query machinery.
//!
//! This crate implements the query-side concepts of the paper:
//!
//! * [`atom`] / [`query`] — full conjunctive queries without self-joins
//!   (Section 2.2) and the paper's named query families: cycles `C_k`,
//!   chains `L_k`, stars `T_k`, the `B_{k,m}` family of Table 2, the
//!   two-level star-of-paths `SP_k` of Example 5.3, and `K_4`;
//! * [`hypergraph`] — connectivity, connected components, distances, radius
//!   and diameter of the query hypergraph;
//! * [`characteristic`](mod@characteristic) — the characteristic `χ(q) = a − k − ℓ + c`
//!   (Lemma 2.1), tree-likeness, and the edge-contraction `q/M`;
//! * [`packing`] — fractional edge packings and covers, the fractional
//!   vertex-covering number `τ*` and edge-cover number `ρ*`, and the
//!   vertices `pk(q)` of the packing polytope over which the lower bound is
//!   maximised (Section 3.3);
//! * [`residual`] — residual queries `q_x` obtained by fixing a set of
//!   variables (Section 4.2), and saturation checks for packings;
//! * [`evaluate`] — binding atoms to relation instances and sequential
//!   (single-server) evaluation used as the correctness oracle.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod atom;
pub mod characteristic;
pub mod evaluate;
pub mod hypergraph;
pub mod packing;
pub mod query;
pub mod residual;
pub mod size_bounds;

pub use atom::Atom;
pub use characteristic::{characteristic, contract, is_tree_like};
pub use evaluate::{bind_atom, evaluate_bound, evaluate_sequential, instantiate};
pub use hypergraph::Hypergraph;
pub use packing::{
    edge_cover_number, edge_packing_polytope, fractional_edge_packing_vertices, is_edge_packing,
    optimal_edge_packing, vertex_cover_number,
};
pub use query::ConjunctiveQuery;
pub use residual::{residual_query, saturates};
pub use size_bounds::{agm_bound, optimal_edge_cover as optimal_fractional_edge_cover};
