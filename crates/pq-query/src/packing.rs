//! Fractional edge packings and covers of a query hypergraph
//! (Section 2.2), and the vertices `pk(q)` of the packing polytope over
//! which the one-round lower bound is maximised (Section 3.3).

use crate::hypergraph::Hypergraph;
use crate::query::ConjunctiveQuery;
use pq_lp::{ConstraintOp, LinearProgram, Objective, Polytope};

/// Tolerance used for feasibility checks on packings/covers.
pub const PACKING_TOLERANCE: f64 = 1e-7;

/// Build the fractional edge-packing polytope of a query: one coordinate
/// `u_j` per atom, one constraint `Σ_{j : x_i ∈ S_j} u_j ≤ 1` per variable,
/// plus non-negativity (Eq. 2).
pub fn edge_packing_polytope(query: &ConjunctiveQuery) -> Polytope {
    let l = query.num_atoms();
    let variables = query.variables();
    let mut rows = Vec::with_capacity(variables.len());
    let mut rhs = Vec::with_capacity(variables.len());
    for var in &variables {
        let mut row = vec![0.0; l];
        for (j, atom) in query.atoms().iter().enumerate() {
            if atom.contains(var) {
                row[j] = 1.0;
            }
        }
        rows.push(row);
        rhs.push(1.0);
    }
    Polytope::new(rows, rhs, l)
}

/// Enumerate the extreme points `pk(q)` of the fractional edge-packing
/// polytope. For the triangle query this returns the five vertices of
/// Example 3.17.
pub fn fractional_edge_packing_vertices(query: &ConjunctiveQuery) -> Vec<Vec<f64>> {
    edge_packing_polytope(query).vertices(PACKING_TOLERANCE)
}

/// Check whether `u` is a feasible fractional edge packing of `query`.
pub fn is_edge_packing(query: &ConjunctiveQuery, u: &[f64], tolerance: f64) -> bool {
    if u.len() != query.num_atoms() {
        return false;
    }
    edge_packing_polytope(query).contains(u, tolerance)
}

/// Check whether `u` is a *tight* fractional edge packing (every variable
/// constraint holds with equality).
pub fn is_tight_edge_packing(query: &ConjunctiveQuery, u: &[f64], tolerance: f64) -> bool {
    if !is_edge_packing(query, u, tolerance) {
        return false;
    }
    for var in query.variables() {
        let total: f64 = query
            .atoms()
            .iter()
            .zip(u.iter())
            .filter(|(atom, _)| atom.contains(&var))
            .map(|(_, &uj)| uj)
            .sum();
        if (total - 1.0).abs() > tolerance {
            return false;
        }
    }
    true
}

/// The maximum-value fractional edge packing and its value
/// `τ* = max_u Σ_j u_j` (the fractional vertex-covering number, by LP
/// duality).
pub fn optimal_edge_packing(query: &ConjunctiveQuery) -> (Vec<f64>, f64) {
    let mut lp = LinearProgram::new(Objective::Maximize);
    let vars: Vec<_> = query
        .atoms()
        .iter()
        .map(|a| lp.add_variable(format!("u_{}", a.relation())))
        .collect();
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0);
    }
    for variable in query.variables() {
        let terms: Vec<_> = query
            .atoms()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains(&variable))
            .map(|(j, _)| (vars[j], 1.0))
            .collect();
        if !terms.is_empty() {
            lp.add_constraint(terms, ConstraintOp::Le, 1.0);
        }
    }
    let sol = lp.solve().expect("edge-packing LP is always feasible and bounded");
    (sol.values, sol.objective)
}

/// The fractional vertex-covering number `τ*(q)`: the optimum of the
/// fractional vertex-cover LP `min Σ_i v_i` s.t. every atom is covered. By
/// LP duality this equals the optimal edge-packing value; we solve the cover
/// LP directly so the two can be cross-checked in tests.
pub fn vertex_cover_number(query: &ConjunctiveQuery) -> f64 {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let variables = query.variables();
    let vars: Vec<_> = variables
        .iter()
        .map(|v| lp.add_variable(format!("v_{v}")))
        .collect();
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0);
    }
    for atom in query.atoms() {
        let terms: Vec<_> = variables
            .iter()
            .enumerate()
            .filter(|(_, v)| atom.contains(v))
            .map(|(i, _)| (vars[i], 1.0))
            .collect();
        lp.add_constraint(terms, ConstraintOp::Ge, 1.0);
    }
    lp.solve()
        .expect("vertex-cover LP is always feasible and bounded")
        .objective
}

/// The optimal fractional vertex cover itself (values per variable, in
/// [`ConjunctiveQuery::variables`] order) together with `τ*`.
pub fn optimal_vertex_cover(query: &ConjunctiveQuery) -> (Vec<f64>, f64) {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let variables = query.variables();
    let vars: Vec<_> = variables
        .iter()
        .map(|v| lp.add_variable(format!("v_{v}")))
        .collect();
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0);
    }
    for atom in query.atoms() {
        let terms: Vec<_> = variables
            .iter()
            .enumerate()
            .filter(|(_, v)| atom.contains(v))
            .map(|(i, _)| (vars[i], 1.0))
            .collect();
        lp.add_constraint(terms, ConstraintOp::Ge, 1.0);
    }
    let sol = lp.solve().expect("vertex-cover LP is always feasible and bounded");
    (sol.values, sol.objective)
}

/// The fractional edge-cover number `ρ*(q)`: `min Σ_j u_j` such that every
/// variable is covered with weight at least one. Unbounded relations of a
/// variable-free query give `ρ* = 0`.
pub fn edge_cover_number(query: &ConjunctiveQuery) -> f64 {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let vars: Vec<_> = query
        .atoms()
        .iter()
        .map(|a| lp.add_variable(format!("u_{}", a.relation())))
        .collect();
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0);
    }
    for variable in query.variables() {
        let terms: Vec<_> = query
            .atoms()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains(&variable))
            .map(|(j, _)| (vars[j], 1.0))
            .collect();
        lp.add_constraint(terms, ConstraintOp::Ge, 1.0);
    }
    lp.solve()
        .expect("edge-cover LP of a full CQ is feasible (all-ones is a cover)")
        .objective
}

/// The fractional vertex-covering number of the *residual* connectivity:
/// convenience that returns `τ*` restricted to a connected subquery given
/// by atom indices.
pub fn subquery_tau_star(query: &ConjunctiveQuery, atom_indices: &[usize]) -> f64 {
    vertex_cover_number(&query.subquery(atom_indices, "sub"))
}

/// True when the query is connected (needed by several theorem
/// preconditions); thin wrapper re-exported here for convenience.
pub fn is_connected(query: &ConjunctiveQuery) -> bool {
    Hypergraph::of(query).is_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn tau_star_matches_table_2() {
        // Table 2: τ*(C_k) = k/2, τ*(T_k) = 1, τ*(L_k) = ceil(k/2),
        // τ*(B_{k,m}) = k/m.
        for k in 3..=6 {
            assert!(close(vertex_cover_number(&ConjunctiveQuery::cycle(k)), k as f64 / 2.0));
        }
        for k in 1..=5 {
            assert!(close(vertex_cover_number(&ConjunctiveQuery::star(k)), 1.0));
        }
        for k in 1..=6 {
            assert!(close(
                vertex_cover_number(&ConjunctiveQuery::chain(k)),
                (k as f64 / 2.0).ceil()
            ));
        }
        for (k, m) in [(4usize, 2usize), (5, 3), (6, 2), (3, 3)] {
            assert!(close(
                vertex_cover_number(&ConjunctiveQuery::b_query(k, m)),
                k as f64 / m as f64
            ));
        }
    }

    #[test]
    fn packing_optimum_equals_cover_optimum_by_duality() {
        let queries = vec![
            ConjunctiveQuery::triangle(),
            ConjunctiveQuery::chain(4),
            ConjunctiveQuery::star(3),
            ConjunctiveQuery::k4(),
            ConjunctiveQuery::b_query(4, 2),
            ConjunctiveQuery::star_of_paths(2),
        ];
        for q in queries {
            let (_, packing) = optimal_edge_packing(&q);
            let cover = vertex_cover_number(&q);
            assert!(close(packing, cover), "duality gap for {}", q.name());
        }
    }

    #[test]
    fn tau_star_of_star_of_paths_is_k() {
        // Example 5.3: τ*(SP_k) = k.
        for k in 1..=4 {
            assert!(close(
                vertex_cover_number(&ConjunctiveQuery::star_of_paths(k)),
                k as f64
            ));
        }
    }

    #[test]
    fn triangle_polytope_vertices_match_example_3_17() {
        let vertices = fractional_edge_packing_vertices(&ConjunctiveQuery::triangle());
        assert_eq!(vertices.len(), 5);
        let expect = vec![
            vec![0.5, 0.5, 0.5],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0],
        ];
        for e in expect {
            assert!(
                vertices.iter().any(|v| v.iter().zip(e.iter()).all(|(a, b)| close(*a, *b))),
                "vertex {e:?} missing"
            );
        }
    }

    #[test]
    fn chain_packing_example_2_3() {
        // L3: (1,0,1) is a tight, optimal packing with value τ* = 2.
        let l3 = ConjunctiveQuery::chain(3);
        assert!(is_edge_packing(&l3, &[1.0, 0.0, 1.0], 1e-9));
        assert!(is_tight_edge_packing(&l3, &[1.0, 0.0, 1.0], 1e-9));
        assert!(close(vertex_cover_number(&l3), 2.0));
        // (1, 0.5, 1) violates the constraint at x1 (S1+S2) and x2 (S2+S3).
        assert!(!is_edge_packing(&l3, &[1.0, 0.5, 1.0], 1e-9));
    }

    #[test]
    fn edge_cover_examples_from_section_2_2() {
        // q = S1(x,y), S2(y,z): τ* = 1, ρ* = 2.
        let q = ConjunctiveQuery::chain(2);
        assert!(close(vertex_cover_number(&q), 1.0));
        assert!(close(edge_cover_number(&q), 2.0));
        // q = S1(x), S2(x,y), S3(y): τ* = 2 and ρ* = 1.
        let q = ConjunctiveQuery::new(
            "mixed",
            vec![
                crate::Atom::from_strs("S1", &["x"]),
                crate::Atom::from_strs("S2", &["x", "y"]),
                crate::Atom::from_strs("S3", &["y"]),
            ],
        );
        assert!(close(vertex_cover_number(&q), 2.0));
        assert!(close(edge_cover_number(&q), 1.0));
    }

    #[test]
    fn all_polytope_vertices_are_feasible_packings() {
        for q in [
            ConjunctiveQuery::triangle(),
            ConjunctiveQuery::chain(4),
            ConjunctiveQuery::star(3),
            ConjunctiveQuery::cycle(5),
        ] {
            for v in fractional_edge_packing_vertices(&q) {
                assert!(is_edge_packing(&q, &v, 1e-6), "infeasible vertex for {}", q.name());
            }
        }
    }

    #[test]
    fn optimal_vertex_cover_of_triangle_is_half_everywhere() {
        let (cover, value) = optimal_vertex_cover(&ConjunctiveQuery::triangle());
        assert!(close(value, 1.5));
        for v in cover {
            assert!(close(v, 0.5));
        }
    }

    #[test]
    fn subquery_tau_star_restricts_correctly() {
        let l4 = ConjunctiveQuery::chain(4);
        // Sub-chain of two adjacent edges has τ* = 1.
        assert!(close(subquery_tau_star(&l4, &[0, 1]), 1.0));
        assert!(close(subquery_tau_star(&l4, &[0, 1, 2]), 2.0));
    }

    #[test]
    fn is_edge_packing_rejects_wrong_length() {
        let q = ConjunctiveQuery::triangle();
        assert!(!is_edge_packing(&q, &[0.5, 0.5], 1e-9));
    }

    #[test]
    fn connectivity_wrapper() {
        assert!(is_connected(&ConjunctiveQuery::triangle()));
        assert!(!is_connected(&ConjunctiveQuery::cartesian_pair()));
    }
}
