//! The query hypergraph: one node per variable, one hyperedge per atom.
//!
//! Provides connectivity, connected components, shortest distances between
//! variables (two variables are adjacent when they co-occur in an atom),
//! and the radius/diameter used by the multi-round plan construction of
//! Lemma 5.4 (`rad(q)`) and the round lower bound of Corollary 5.17
//! (`diam(q)`).

use crate::query::ConjunctiveQuery;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The hypergraph of a conjunctive query.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// Variables (nodes), sorted.
    variables: Vec<String>,
    /// Hyperedges: distinct variables of each atom, by atom index.
    edges: Vec<BTreeSet<String>>,
}

impl Hypergraph {
    /// Build the hypergraph of a query.
    pub fn of(query: &ConjunctiveQuery) -> Self {
        let variables: BTreeSet<String> = query
            .atoms()
            .iter()
            .flat_map(|a| a.variables().iter().cloned())
            .collect();
        let edges = query
            .atoms()
            .iter()
            .map(|a| a.distinct_variables().into_iter().collect())
            .collect();
        Hypergraph {
            variables: variables.into_iter().collect(),
            edges,
        }
    }

    /// Nodes (variables) of the hypergraph, sorted.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Hyperedges (one per atom, in atom order).
    pub fn edges(&self) -> &[BTreeSet<String>] {
        &self.edges
    }

    /// Variable adjacency: neighbours of every variable (variables sharing
    /// an atom with it).
    fn adjacency(&self) -> BTreeMap<&str, BTreeSet<&str>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for v in &self.variables {
            adj.insert(v.as_str(), BTreeSet::new());
        }
        for edge in &self.edges {
            for a in edge {
                for b in edge {
                    if a != b {
                        adj.get_mut(a.as_str()).expect("node exists").insert(b.as_str());
                    }
                }
            }
        }
        adj
    }

    /// Connected components over the *atoms*: each component is a set of
    /// atom indices. Atoms with no variables (nullary) each form their own
    /// component. The number of components is the paper's `c`.
    pub fn atom_components(&self) -> Vec<Vec<usize>> {
        let l = self.edges.len();
        let mut visited = vec![false; l];
        let mut components = Vec::new();
        for start in 0..l {
            if visited[start] {
                continue;
            }
            let mut queue = VecDeque::from([start]);
            visited[start] = true;
            let mut component = vec![start];
            while let Some(i) = queue.pop_front() {
                for (j, vis) in visited.iter_mut().enumerate() {
                    // An empty (nullary) edge is disjoint from everything, so
                    // nullary atoms fall out as singleton components here.
                    if !*vis && !self.edges[i].is_disjoint(&self.edges[j]) {
                        *vis = true;
                        component.push(j);
                        queue.push_back(j);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Number of connected components `c` (over atoms; isolated variables
    /// cannot exist in a query hypergraph since every variable comes from an
    /// atom).
    pub fn num_components(&self) -> usize {
        self.atom_components().len()
    }

    /// True when the query hypergraph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        self.num_components() == 1
    }

    /// Shortest-path distance between two variables (number of edges in the
    /// variable adjacency graph); `None` when they are in different
    /// components or either is unknown.
    pub fn distance(&self, from: &str, to: &str) -> Option<usize> {
        if !self.variables.iter().any(|v| v == from) || !self.variables.iter().any(|v| v == to) {
            return None;
        }
        if from == to {
            return Some(0);
        }
        let adj = self.adjacency();
        let mut dist: BTreeMap<&str, usize> = BTreeMap::new();
        dist.insert(from, 0);
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            let d = dist[v];
            for &w in &adj[v] {
                if !dist.contains_key(w) {
                    dist.insert(w, d + 1);
                    if w == to {
                        return Some(d + 1);
                    }
                    queue.push_back(w);
                }
            }
        }
        dist.get(to).copied()
    }

    /// Eccentricity of a variable: its maximum distance to any other
    /// variable. `None` when the hypergraph is disconnected.
    pub fn eccentricity(&self, variable: &str) -> Option<usize> {
        let mut max = 0;
        for v in &self.variables {
            match self.distance(variable, v) {
                Some(d) => max = max.max(d),
                None => return None,
            }
        }
        Some(max)
    }

    /// The radius `rad(q) = min_u max_v d(u, v)`; `None` when disconnected.
    pub fn radius(&self) -> Option<usize> {
        self.variables
            .iter()
            .map(|v| self.eccentricity(v))
            .collect::<Option<Vec<_>>>()
            .map(|e| e.into_iter().min().unwrap_or(0))
    }

    /// A variable achieving the radius (a "centre"); `None` when
    /// disconnected or empty.
    pub fn center(&self) -> Option<String> {
        let mut best: Option<(usize, &String)> = None;
        for v in &self.variables {
            let ecc = self.eccentricity(v)?;
            if best.map_or(true, |(e, _)| ecc < e) {
                best = Some((ecc, v));
            }
        }
        best.map(|(_, v)| v.clone())
    }

    /// The diameter `diam(q) = max_{u,v} d(u, v)`; `None` when disconnected.
    pub fn diameter(&self) -> Option<usize> {
        self.variables
            .iter()
            .map(|v| self.eccentricity(v))
            .collect::<Option<Vec<_>>>()
            .map(|e| e.into_iter().max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;

    #[test]
    fn triangle_is_connected_with_radius_and_diameter_one() {
        let h = Hypergraph::of(&ConjunctiveQuery::triangle());
        assert!(h.is_connected());
        assert_eq!(h.num_components(), 1);
        assert_eq!(h.radius(), Some(1));
        assert_eq!(h.diameter(), Some(1));
    }

    #[test]
    fn chain_radius_and_diameter_match_paper() {
        // rad(L_k) = ceil(k/2), diam(L_k) = k (Section 5.1 / 5.3).
        for k in 1..=6 {
            let h = Hypergraph::of(&ConjunctiveQuery::chain(k));
            assert_eq!(h.diameter(), Some(k), "diam(L_{k})");
            assert_eq!(h.radius(), Some(k.div_ceil(2)), "rad(L_{k})");
        }
    }

    #[test]
    fn cycle_radius_and_diameter_match_paper() {
        // rad(C_k) = diam(C_k) = floor(k/2).
        for k in 3..=7 {
            let h = Hypergraph::of(&ConjunctiveQuery::cycle(k));
            assert_eq!(h.radius(), Some(k / 2), "rad(C_{k})");
            assert_eq!(h.diameter(), Some(k / 2), "diam(C_{k})");
        }
    }

    #[test]
    fn star_is_connected_with_radius_one() {
        let h = Hypergraph::of(&ConjunctiveQuery::star(5));
        assert!(h.is_connected());
        assert_eq!(h.radius(), Some(1));
        assert_eq!(h.diameter(), Some(2));
        assert_eq!(h.center(), Some("z".to_string()));
    }

    #[test]
    fn cartesian_pair_is_disconnected() {
        let h = Hypergraph::of(&ConjunctiveQuery::cartesian_pair());
        assert!(!h.is_connected());
        assert_eq!(h.num_components(), 2);
        assert_eq!(h.radius(), None);
        assert_eq!(h.diameter(), None);
        assert_eq!(h.distance("x", "y"), None);
    }

    #[test]
    fn distances_in_a_chain() {
        let h = Hypergraph::of(&ConjunctiveQuery::chain(4));
        assert_eq!(h.distance("x0", "x4"), Some(4));
        assert_eq!(h.distance("x1", "x3"), Some(2));
        assert_eq!(h.distance("x2", "x2"), Some(0));
        assert_eq!(h.distance("x0", "zzz"), None);
    }

    #[test]
    fn star_of_paths_radius() {
        // SP_k: centre z, each path has length 2 from z, so rad = 2, diam = 4.
        let h = Hypergraph::of(&ConjunctiveQuery::star_of_paths(3));
        assert_eq!(h.radius(), Some(2));
        assert_eq!(h.diameter(), Some(4));
    }

    #[test]
    fn components_of_disconnected_query() {
        let q = ConjunctiveQuery::new(
            "two_chains",
            vec![
                crate::Atom::from_strs("A", &["x", "y"]),
                crate::Atom::from_strs("B", &["y", "z"]),
                crate::Atom::from_strs("C", &["u", "v"]),
            ],
        );
        let h = Hypergraph::of(&q);
        let comps = h.atom_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
    }
}
