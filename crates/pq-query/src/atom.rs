//! Query atoms.

use pq_relation::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single atom `S_j(x̄_j)` of a conjunctive query: a relation name plus an
/// ordered list of variables.
///
/// Variables may repeat inside an atom (e.g. `S(x, x)`); the evaluation
/// layer handles the implied equality selection. The paper restricts
/// attention to queries *without self-joins*, i.e. no two atoms share a
/// relation name — that restriction is enforced at the
/// [`crate::ConjunctiveQuery`] level.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    relation: String,
    variables: Vec<String>,
}

impl Atom {
    /// Create an atom.
    pub fn new(relation: impl Into<String>, variables: Vec<String>) -> Self {
        Atom {
            relation: relation.into(),
            variables,
        }
    }

    /// Convenience constructor from string slices.
    pub fn from_strs(relation: &str, variables: &[&str]) -> Self {
        Atom::new(relation, variables.iter().map(|s| s.to_string()).collect())
    }

    /// The relation name `S_j`.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The ordered variables `x̄_j`.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Arity `a_j` of the atom (number of variable positions, counting
    /// repeats).
    pub fn arity(&self) -> usize {
        self.variables.len()
    }

    /// Distinct variables, in order of first occurrence.
    pub fn distinct_variables(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for v in &self.variables {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        }
        seen
    }

    /// Whether the atom mentions `variable`.
    pub fn contains(&self, variable: &str) -> bool {
        self.variables.iter().any(|v| v == variable)
    }

    /// A schema whose attribute names are this atom's *distinct* variables
    /// (used when binding a relation instance to the atom).
    pub fn schema(&self) -> Schema {
        Schema::new(self.relation.clone(), self.distinct_variables())
    }

    /// Return a copy with every variable renamed through `rename`.
    pub fn map_variables(&self, rename: impl Fn(&str) -> String) -> Atom {
        Atom {
            relation: self.relation.clone(),
            variables: self.variables.iter().map(|v| rename(v)).collect(),
        }
    }

    /// Return a copy with the variables in `drop` removed (used to build
    /// residual queries, which decrease the arity).
    pub fn without_variables(&self, drop: &[String]) -> Atom {
        Atom {
            relation: self.relation.clone(),
            variables: self
                .variables
                .iter()
                .filter(|v| !drop.contains(v))
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.variables.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = Atom::from_strs("S1", &["x", "y"]);
        assert_eq!(a.relation(), "S1");
        assert_eq!(a.arity(), 2);
        assert!(a.contains("x"));
        assert!(!a.contains("z"));
        assert_eq!(a.to_string(), "S1(x, y)");
    }

    #[test]
    fn repeated_variables_counted_in_arity_but_not_schema() {
        let a = Atom::from_strs("S", &["x", "x", "y"]);
        assert_eq!(a.arity(), 3);
        assert_eq!(a.distinct_variables(), vec!["x", "y"]);
        assert_eq!(a.schema().arity(), 2);
    }

    #[test]
    fn variable_renaming() {
        let a = Atom::from_strs("S", &["x", "y"]);
        let b = a.map_variables(|v| format!("{v}_1"));
        assert_eq!(b.variables(), &["x_1".to_string(), "y_1".to_string()]);
        assert_eq!(b.relation(), "S");
    }

    #[test]
    fn dropping_variables_decreases_arity() {
        let a = Atom::from_strs("S", &["z", "x"]);
        let b = a.without_variables(&["z".to_string()]);
        assert_eq!(b.variables(), &["x".to_string()]);
        assert_eq!(b.arity(), 1);
    }
}
