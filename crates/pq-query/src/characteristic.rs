//! The characteristic `χ(q) = a − k − ℓ + c` (Section 2.2, Lemma 2.1),
//! tree-likeness, and the edge contraction `q/M`.

use crate::atom::Atom;
use crate::hypergraph::Hypergraph;
use crate::query::ConjunctiveQuery;
use std::collections::BTreeMap;

/// The characteristic of a query: `χ(q) = a − k − ℓ + c` where `a` is the
/// total arity, `k` the number of variables, `ℓ` the number of atoms and `c`
/// the number of connected components. By Lemma 2.1(c), `χ(q) ≥ 0` for every
/// query.
pub fn characteristic(query: &ConjunctiveQuery) -> i64 {
    let a = query.total_arity() as i64;
    let k = query.num_variables() as i64;
    let l = query.num_atoms() as i64;
    let c = Hypergraph::of(query).num_components() as i64;
    a - k - l + c
}

/// A query is *tree-like* when it is connected and `χ(q) = 0`
/// (Definition 2.2). Over binary vocabularies this coincides with the
/// hypergraph being a tree.
pub fn is_tree_like(query: &ConjunctiveQuery) -> bool {
    Hypergraph::of(query).is_connected() && characteristic(query) == 0
}

/// Contract the atoms in `contracted` (indices into `query.atoms()`): the
/// variables of each contracted atom are merged into a single node, and the
/// query `q/M` consists of the *remaining* atoms with variables replaced by
/// their merged representatives.
///
/// The representative of a merged class is its lexicographically smallest
/// variable, so e.g. `L_5 / {S_2, S_4} = S1(x0,x1), S3(x1,x3), S5(x3,x5)`
/// exactly as in the paper's example.
///
/// # Panics
/// Panics when an index is out of range.
pub fn contract(query: &ConjunctiveQuery, contracted: &[usize]) -> ConjunctiveQuery {
    for &i in contracted {
        assert!(i < query.num_atoms(), "atom index {i} out of range");
    }
    // Union-find over variables.
    let variables = query.variables();
    let mut parent: BTreeMap<String, String> = variables
        .iter()
        .map(|v| (v.clone(), v.clone()))
        .collect();

    fn find(parent: &mut BTreeMap<String, String>, v: &str) -> String {
        let p = parent[v].clone();
        if p == v {
            return p;
        }
        let root = find(parent, &p);
        parent.insert(v.to_string(), root.clone());
        root
    }

    fn union(parent: &mut BTreeMap<String, String>, a: &str, b: &str) {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra == rb {
            return;
        }
        // Smaller name becomes the representative.
        if ra < rb {
            parent.insert(rb, ra);
        } else {
            parent.insert(ra, rb);
        }
    }

    for &i in contracted {
        let vars = query.atoms()[i].distinct_variables();
        for pair in vars.windows(2) {
            union(&mut parent, &pair[0], &pair[1]);
        }
    }

    let remaining: Vec<Atom> = query
        .atoms()
        .iter()
        .enumerate()
        .filter(|(i, _)| !contracted.contains(i))
        .map(|(_, atom)| atom.map_variables(|v| find(&mut parent.clone(), v)))
        .collect();
    // NOTE: map_variables above clones `parent` per atom because the closure
    // cannot capture it mutably twice; path compression is therefore not
    // shared across atoms, which is fine at these sizes.

    ConjunctiveQuery::new(format!("{}/M", query.name()), remaining)
}

/// The characteristic of a sub-multiset of atoms, viewed as a query of its
/// own (the paper's `χ(M)`). Needed to check the ε-goodness condition of
/// Definition 5.5 (`χ(M) = 0`).
pub fn characteristic_of_atoms(query: &ConjunctiveQuery, atom_indices: &[usize]) -> i64 {
    characteristic(&query.subquery(atom_indices, "M"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;

    #[test]
    fn chain_queries_are_tree_like_with_zero_characteristic() {
        for k in 1..=6 {
            let q = ConjunctiveQuery::chain(k);
            assert_eq!(characteristic(&q), 0, "chi(L_{k})");
            assert!(is_tree_like(&q), "L_{k} tree-like");
        }
    }

    #[test]
    fn star_queries_are_tree_like() {
        for k in 1..=5 {
            let q = ConjunctiveQuery::star(k);
            assert_eq!(characteristic(&q), 0);
            assert!(is_tree_like(&q));
        }
    }

    #[test]
    fn paper_worked_examples_for_characteristic() {
        // χ(L5) = 10 − 6 − 5 + 1 = 0, χ(L3) = 0.
        assert_eq!(characteristic(&ConjunctiveQuery::chain(5)), 0);
        assert_eq!(characteristic(&ConjunctiveQuery::chain(3)), 0);
        // χ(K4) = 12 − 4 − 6 + 1 = 3.
        assert_eq!(characteristic(&ConjunctiveQuery::k4()), 3);
        // χ(C3) = 6 − 3 − 3 + 1 = 1.
        assert_eq!(characteristic(&ConjunctiveQuery::triangle()), 1);
        // Triangle is connected but not tree-like.
        assert!(!is_tree_like(&ConjunctiveQuery::triangle()));
    }

    #[test]
    fn characteristic_is_additive_over_components() {
        // Lemma 2.1(a): components are R(x),S(y) with χ = 0 each.
        let q = ConjunctiveQuery::cartesian_pair();
        assert_eq!(characteristic(&q), 0);
        assert!(!is_tree_like(&q)); // disconnected, so not tree-like
    }

    #[test]
    fn contraction_of_l5_matches_paper_example() {
        // L5/{S2, S4} = S1(x0,x1), S3(x1,x3), S5(x3,x5).
        let l5 = ConjunctiveQuery::chain(5);
        let contracted = contract(&l5, &[1, 3]); // S2 and S4 (0-based)
        assert_eq!(contracted.num_atoms(), 3);
        let atoms: Vec<String> = contracted.atoms().iter().map(|a| a.to_string()).collect();
        assert_eq!(atoms, vec!["S1(x0, x1)", "S3(x1, x3)", "S5(x3, x5)"]);
        // χ is preserved: χ(L5/M) = χ(L5) − χ(M) = 0 (Lemma 2.1(b)).
        assert_eq!(characteristic(&contracted), 0);
    }

    #[test]
    fn contraction_of_k4_matches_paper_example() {
        // M = {S1, S2, S3} (the triangle on x1,x2,x3):
        // K4/M = S4(x1,x4), S5(x1,x4), S6(x1,x4) — all variables of the
        // triangle merge into x1.
        let k4 = ConjunctiveQuery::k4();
        let contracted = contract(&k4, &[0, 1, 2]);
        assert_eq!(contracted.num_atoms(), 3);
        for atom in contracted.atoms() {
            assert_eq!(atom.variables(), &["x1".to_string(), "x4".to_string()]);
        }
        // Characteristics from the paper: χ(K4)=3, χ(M)=1, χ(K4/M)=2.
        assert_eq!(characteristic(&k4), 3);
        assert_eq!(characteristic_of_atoms(&k4, &[0, 1, 2]), 1);
        assert_eq!(characteristic(&contracted), 2);
    }

    #[test]
    fn lemma_2_1_b_contraction_identity_on_examples() {
        // χ(q/M) = χ(q) − χ(M) for a few hand-picked M.
        let cases = vec![
            (ConjunctiveQuery::chain(5), vec![1usize, 3]),
            (ConjunctiveQuery::k4(), vec![0, 1, 2]),
            (ConjunctiveQuery::cycle(5), vec![0, 2]),
            (ConjunctiveQuery::star(4), vec![0]),
        ];
        for (q, m) in cases {
            let lhs = characteristic(&contract(&q, &m));
            let rhs = characteristic(&q) - characteristic_of_atoms(&q, &m);
            assert_eq!(lhs, rhs, "Lemma 2.1(b) failed for {} / {m:?}", q.name());
        }
    }

    #[test]
    fn lemma_2_1_c_nonnegativity_on_families() {
        let queries = vec![
            ConjunctiveQuery::chain(4),
            ConjunctiveQuery::cycle(6),
            ConjunctiveQuery::star(5),
            ConjunctiveQuery::k4(),
            ConjunctiveQuery::b_query(4, 2),
            ConjunctiveQuery::star_of_paths(3),
        ];
        for q in queries {
            assert!(characteristic(&q) >= 0, "chi({}) < 0", q.name());
        }
    }

    #[test]
    fn contracting_a_cycle_shortens_it() {
        // C6 / {S1} is isomorphic to C5 (merging x1 and x2).
        let c6 = ConjunctiveQuery::cycle(6);
        let contracted = contract(&c6, &[0]);
        assert_eq!(contracted.num_atoms(), 5);
        assert_eq!(contracted.num_variables(), 5);
        assert_eq!(characteristic(&contracted), 1);
    }

    #[test]
    fn acyclic_but_not_tree_like_example() {
        // q = S1(x0,x1,x2), S2(x1,x2,x3) is acyclic but not tree-like
        // (Section 2.2): χ = 6 − 4 − 2 + 1 = 1.
        let q = ConjunctiveQuery::new(
            "acyclic",
            vec![
                crate::Atom::from_strs("S1", &["x0", "x1", "x2"]),
                crate::Atom::from_strs("S2", &["x1", "x2", "x3"]),
            ],
        );
        assert_eq!(characteristic(&q), 1);
        assert!(!is_tree_like(&q));
    }
}
