//! Full conjunctive queries and the paper's named query families.

use crate::atom::Atom;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A full conjunctive query without self-joins (Eq. 1 of the paper):
/// `q(x_1, …, x_k) = S_1(x̄_1), …, S_ℓ(x̄_ℓ)` where every variable of the
/// body appears in the head.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    name: String,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Create a query from its atoms.
    ///
    /// # Panics
    /// Panics when two atoms share a relation name (the paper's queries are
    /// self-join free; see footnote 2 for why this is w.l.o.g.).
    pub fn new(name: impl Into<String>, atoms: Vec<Atom>) -> Self {
        let name = name.into();
        for (i, a) in atoms.iter().enumerate() {
            for b in &atoms[..i] {
                assert!(
                    a.relation() != b.relation(),
                    "query `{name}` has a self-join on relation `{}`",
                    a.relation()
                );
            }
        }
        ConjunctiveQuery { name, atoms }
    }

    /// The query's name (used in reports and generated relation names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The atoms of the body.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms `ℓ`.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// All variables of the query, in order of first occurrence (these are
    /// also the head variables, since the query is full).
    pub fn variables(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if !seen.contains(v) {
                    seen.push(v.clone());
                }
            }
        }
        seen
    }

    /// Number of variables `k`.
    pub fn num_variables(&self) -> usize {
        self.variables().len()
    }

    /// Total arity `a = Σ_j a_j`.
    pub fn total_arity(&self) -> usize {
        self.atoms.iter().map(Atom::arity).sum()
    }

    /// The atoms that mention `variable` (the paper's `atoms(x_i)`),
    /// returned as indices into [`ConjunctiveQuery::atoms`].
    pub fn atoms_of(&self, variable: &str) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains(variable))
            .map(|(i, _)| i)
            .collect()
    }

    /// The atom with the given relation name, if any.
    pub fn atom_by_relation(&self, relation: &str) -> Option<&Atom> {
        self.atoms.iter().find(|a| a.relation() == relation)
    }

    /// Relation names, in atom order.
    pub fn relation_names(&self) -> Vec<String> {
        self.atoms.iter().map(|a| a.relation().to_string()).collect()
    }

    /// The subquery induced by a set of atom indices (keeping this query's
    /// name with a suffix). Variables are those of the kept atoms.
    pub fn subquery(&self, atom_indices: &[usize], name: &str) -> ConjunctiveQuery {
        let atoms = atom_indices.iter().map(|&i| self.atoms[i].clone()).collect();
        ConjunctiveQuery::new(name, atoms)
    }

    /// Enumerate all non-empty connected subqueries, as sets of atom
    /// indices. Exponential in the number of atoms — intended for the small
    /// queries of the paper (≲ 16 atoms).
    pub fn connected_subqueries(&self) -> Vec<Vec<usize>> {
        let l = self.num_atoms();
        let mut out = Vec::new();
        for mask in 1u64..(1u64 << l) {
            let indices: Vec<usize> = (0..l).filter(|i| mask & (1 << i) != 0).collect();
            let sub = self.subquery(&indices, "sub");
            if crate::hypergraph::Hypergraph::of(&sub).is_connected() {
                out.push(indices);
            }
        }
        out
    }

    // ---------------------------------------------------------------
    // Named query families from the paper.
    // ---------------------------------------------------------------

    /// The cycle query `C_k(x_1,…,x_k) = ⋀_j S_j(x_j, x_{(j mod k)+1})`
    /// (Table 2). `C_3` is the triangle query.
    pub fn cycle(k: usize) -> ConjunctiveQuery {
        assert!(k >= 2, "cycle query needs k >= 2");
        let atoms = (1..=k)
            .map(|j| {
                Atom::from_strs(
                    &format!("S{j}"),
                    &[&format!("x{j}"), &format!("x{}", (j % k) + 1)],
                )
            })
            .collect();
        ConjunctiveQuery::new(format!("C{k}"), atoms)
    }

    /// The triangle query `C_3 = S_1(x_1,x_2), S_2(x_2,x_3), S_3(x_3,x_1)`.
    pub fn triangle() -> ConjunctiveQuery {
        Self::cycle(3)
    }

    /// The chain (line) query `L_k(x_0,…,x_k) = ⋀_j S_j(x_{j−1}, x_j)`
    /// (Table 2).
    pub fn chain(k: usize) -> ConjunctiveQuery {
        assert!(k >= 1, "chain query needs k >= 1");
        let atoms = (1..=k)
            .map(|j| {
                Atom::from_strs(
                    &format!("S{j}"),
                    &[&format!("x{}", j - 1), &format!("x{j}")],
                )
            })
            .collect();
        ConjunctiveQuery::new(format!("L{k}"), atoms)
    }

    /// The star query `T_k(z, x_1,…,x_k) = ⋀_j S_j(z, x_j)` (Table 2 and
    /// Section 4.2). `T_2` is the simple join `S_1(z,x_1), S_2(z,x_2)`.
    pub fn star(k: usize) -> ConjunctiveQuery {
        assert!(k >= 1, "star query needs k >= 1");
        let atoms = (1..=k)
            .map(|j| Atom::from_strs(&format!("S{j}"), &["z", &format!("x{j}")]))
            .collect();
        ConjunctiveQuery::new(format!("T{k}"), atoms)
    }

    /// The simple (two-way) join `q(x,y,z) = S_1(z,x), S_2(z,y)` of
    /// Example 4.1 — an alias for [`ConjunctiveQuery::star`] with `k = 2`.
    pub fn simple_join() -> ConjunctiveQuery {
        Self::star(2)
    }

    /// The query `B_{k,m}` of Table 2: one relation `S_I(x̄_I)` for every
    /// `m`-element subset `I ⊆ [k]`, over `k` variables.
    pub fn b_query(k: usize, m: usize) -> ConjunctiveQuery {
        assert!(m >= 1 && m <= k, "B_{{k,m}} requires 1 <= m <= k");
        let mut atoms = Vec::new();
        // Enumerate m-subsets of {1..k} in lexicographic order.
        let mut combo: Vec<usize> = (1..=m).collect();
        loop {
            let vars: Vec<String> = combo.iter().map(|i| format!("x{i}")).collect();
            let label: Vec<String> = combo.iter().map(|i| i.to_string()).collect();
            atoms.push(Atom::new(
                format!("S_{}", label.join("_")),
                vars,
            ));
            // Next combination.
            let mut i = m;
            loop {
                if i == 0 {
                    return ConjunctiveQuery::new(format!("B{k}_{m}"), atoms);
                }
                i -= 1;
                if combo[i] != i + 1 + k - m {
                    combo[i] += 1;
                    for j in i + 1..m {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// The star-of-paths query `SP_k = ⋀_i R_i(z, x_i), S_i(x_i, y_i)` of
    /// Example 5.3.
    pub fn star_of_paths(k: usize) -> ConjunctiveQuery {
        assert!(k >= 1, "SP_k requires k >= 1");
        let mut atoms = Vec::new();
        for i in 1..=k {
            atoms.push(Atom::from_strs(&format!("R{i}"), &["z", &format!("x{i}")]));
            atoms.push(Atom::from_strs(
                &format!("S{i}"),
                &[&format!("x{i}"), &format!("y{i}")],
            ));
        }
        ConjunctiveQuery::new(format!("SP{k}"), atoms)
    }

    /// The complete-graph query `K_4` on four variables (Section 2.2's
    /// worked example for the characteristic).
    pub fn k4() -> ConjunctiveQuery {
        let atoms = vec![
            Atom::from_strs("S1", &["x1", "x2"]),
            Atom::from_strs("S2", &["x1", "x3"]),
            Atom::from_strs("S3", &["x2", "x3"]),
            Atom::from_strs("S4", &["x1", "x4"]),
            Atom::from_strs("S5", &["x2", "x4"]),
            Atom::from_strs("S6", &["x3", "x4"]),
        ];
        ConjunctiveQuery::new("K4", atoms)
    }

    /// A Cartesian-product query `R(x), S(y)` (used in tests of
    /// disconnected-query handling).
    pub fn cartesian_pair() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "CP",
            vec![Atom::from_strs("R", &["x"]), Atom::from_strs("S", &["y"])],
        )
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vars: Vec<String> = self.variables();
        write!(f, "{}({}) = ", self.name, vars.join(", "))?;
        let body: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_for_named_families() {
        let c3 = ConjunctiveQuery::triangle();
        assert_eq!(c3.num_atoms(), 3);
        assert_eq!(c3.num_variables(), 3);
        assert_eq!(c3.total_arity(), 6);

        let l5 = ConjunctiveQuery::chain(5);
        assert_eq!(l5.num_atoms(), 5);
        assert_eq!(l5.num_variables(), 6);
        assert_eq!(l5.total_arity(), 10);

        let t4 = ConjunctiveQuery::star(4);
        assert_eq!(t4.num_atoms(), 4);
        assert_eq!(t4.num_variables(), 5);

        let k4 = ConjunctiveQuery::k4();
        assert_eq!(k4.num_atoms(), 6);
        assert_eq!(k4.num_variables(), 4);
        assert_eq!(k4.total_arity(), 12);

        let sp3 = ConjunctiveQuery::star_of_paths(3);
        assert_eq!(sp3.num_atoms(), 6);
        assert_eq!(sp3.num_variables(), 7); // z, x1..x3, y1..y3
    }

    #[test]
    fn b_query_has_choose_k_m_atoms() {
        let b = ConjunctiveQuery::b_query(4, 2);
        assert_eq!(b.num_atoms(), 6); // C(4,2)
        assert_eq!(b.num_variables(), 4);
        let b = ConjunctiveQuery::b_query(5, 3);
        assert_eq!(b.num_atoms(), 10); // C(5,3)
        assert_eq!(b.num_variables(), 5);
        // B_{k,k} is a single atom over all variables.
        let b = ConjunctiveQuery::b_query(3, 3);
        assert_eq!(b.num_atoms(), 1);
        assert_eq!(b.atoms()[0].arity(), 3);
    }

    #[test]
    #[should_panic(expected = "self-join")]
    fn self_joins_are_rejected() {
        ConjunctiveQuery::new(
            "bad",
            vec![
                Atom::from_strs("S", &["x", "y"]),
                Atom::from_strs("S", &["y", "z"]),
            ],
        );
    }

    #[test]
    fn atoms_of_variable() {
        let c3 = ConjunctiveQuery::triangle();
        // x2 occurs in S1(x1,x2) and S2(x2,x3): indices 0 and 1.
        assert_eq!(c3.atoms_of("x2"), vec![0, 1]);
        assert_eq!(c3.atoms_of("nonexistent"), Vec::<usize>::new());
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let l3 = ConjunctiveQuery::chain(3);
        assert_eq!(l3.variables(), vec!["x0", "x1", "x2", "x3"]);
    }

    #[test]
    fn display_renders_head_and_body() {
        let q = ConjunctiveQuery::simple_join();
        let s = q.to_string();
        assert!(s.contains("T2(z, x1, x2)"));
        assert!(s.contains("S1(z, x1)"));
        assert!(s.contains("S2(z, x2)"));
    }

    #[test]
    fn connected_subqueries_of_triangle() {
        let c3 = ConjunctiveQuery::triangle();
        let subs = c3.connected_subqueries();
        // Every non-empty subset of the triangle's edges is connected except
        // none — actually all 7 are connected (each pair shares a vertex).
        assert_eq!(subs.len(), 7);
    }

    #[test]
    fn connected_subqueries_of_chain() {
        let l3 = ConjunctiveQuery::chain(3);
        // Connected subsets of a path of 3 edges: 3 singletons + 2 pairs of
        // adjacent edges + 1 full = 6 (the pair {S1,S3} is disconnected).
        assert_eq!(l3.connected_subqueries().len(), 6);
    }

    #[test]
    fn subquery_extraction() {
        let l3 = ConjunctiveQuery::chain(3);
        let sub = l3.subquery(&[0, 1], "prefix");
        assert_eq!(sub.num_atoms(), 2);
        assert_eq!(sub.variables(), vec!["x0", "x1", "x2"]);
        assert_eq!(sub.name(), "prefix");
    }

    #[test]
    fn atom_lookup_by_relation() {
        let c3 = ConjunctiveQuery::triangle();
        assert!(c3.atom_by_relation("S2").is_some());
        assert!(c3.atom_by_relation("S9").is_none());
        assert_eq!(c3.relation_names(), vec!["S1", "S2", "S3"]);
    }
}
