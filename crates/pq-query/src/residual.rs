//! Residual queries (Section 4.2).
//!
//! Fixing a set of variables `x` (the heavy-hitter variables) yields the
//! residual query `q_x`, obtained by removing every variable of `x` from
//! every atom and decreasing arities accordingly. The skew-aware algorithms
//! compute `q[h/x]` — the residual query on the tuples that match a specific
//! heavy-hitter assignment `h` — and the skewed lower bound of Theorem 4.4
//! maximises over packings of `q` that *saturate* `x`.

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;

/// The residual query `q_x`: every variable in `fixed` is removed from every
/// atom (arities shrink by `d_j = |x ∩ vars(S_j)|`). Atoms whose variables
/// are all fixed become nullary and are kept (they act as boolean guards).
pub fn residual_query(query: &ConjunctiveQuery, fixed: &[String]) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = query
        .atoms()
        .iter()
        .map(|a| a.without_variables(fixed))
        .collect();
    ConjunctiveQuery::new(format!("{}_res", query.name()), atoms)
}

/// Does the packing `u` (indexed like `query.atoms()`) *saturate* every
/// variable in `fixed`, i.e. `Σ_{j : x_i ∈ S_j} u_j ≥ 1` for every
/// `x_i ∈ fixed`? (Definition before Theorem 4.4.)
pub fn saturates(query: &ConjunctiveQuery, u: &[f64], fixed: &[String], tolerance: f64) -> bool {
    assert_eq!(u.len(), query.num_atoms(), "packing length must equal atom count");
    fixed.iter().all(|x| {
        let total: f64 = query
            .atoms()
            .iter()
            .zip(u.iter())
            .filter(|(a, _)| a.contains(x))
            .map(|(_, &uj)| uj)
            .sum();
        total >= 1.0 - tolerance
    })
}

/// The per-atom arity reductions `d_j = |x ∩ vars(S_j)|` for a fixed
/// variable set `x`, in atom order (used by the lower bound of Theorem 4.4,
/// which requires `a_j > d_j`).
pub fn fixed_arities(query: &ConjunctiveQuery, fixed: &[String]) -> Vec<usize> {
    query
        .atoms()
        .iter()
        .map(|a| {
            a.distinct_variables()
                .iter()
                .filter(|v| fixed.contains(v))
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;

    #[test]
    fn residual_of_star_query_is_cartesian_product() {
        // T_k with z fixed: S'_1(x_1), …, S'_k(x_k) — the Cartesian product
        // of Section 4.2.1.
        let t3 = ConjunctiveQuery::star(3);
        let res = residual_query(&t3, &["z".to_string()]);
        assert_eq!(res.num_atoms(), 3);
        for atom in res.atoms() {
            assert_eq!(atom.arity(), 1);
        }
        assert_eq!(res.num_variables(), 3);
    }

    #[test]
    fn residual_of_triangle_with_x_fixed() {
        // C3 with x1 fixed: R'(x2), S(x2,x3), T'(x3) — Section 4.2.2 Case 2.
        let c3 = ConjunctiveQuery::triangle();
        let res = residual_query(&c3, &["x1".to_string()]);
        let arities: Vec<usize> = res.atoms().iter().map(|a| a.arity()).collect();
        assert_eq!(arities, vec![1, 2, 1]);
    }

    #[test]
    fn residual_with_all_variables_fixed_is_nullary() {
        let q = ConjunctiveQuery::simple_join();
        let res = residual_query(
            &q,
            &["z".to_string(), "x1".to_string(), "x2".to_string()],
        );
        assert!(res.atoms().iter().all(|a| a.arity() == 0));
        assert_eq!(res.num_variables(), 0);
    }

    #[test]
    fn saturation_checks() {
        let t2 = ConjunctiveQuery::star(2);
        let z = vec!["z".to_string()];
        // u = (1, 0): S1 contains z with weight 1 — saturates z.
        assert!(saturates(&t2, &[1.0, 0.0], &z, 1e-9));
        // u = (0.4, 0.4): total weight at z is 0.8 < 1 — not saturating.
        assert!(!saturates(&t2, &[0.4, 0.4], &z, 1e-9));
        // u = (0.5, 0.5): exactly 1 — saturating.
        assert!(saturates(&t2, &[0.5, 0.5], &z, 1e-9));
        // Empty fixed set is trivially saturated.
        assert!(saturates(&t2, &[0.0, 0.0], &[], 1e-9));
    }

    #[test]
    fn fixed_arities_per_atom() {
        let c3 = ConjunctiveQuery::triangle();
        assert_eq!(fixed_arities(&c3, &["x1".to_string()]), vec![1, 0, 1]);
        assert_eq!(
            fixed_arities(&c3, &["x1".to_string(), "x2".to_string()]),
            vec![2, 1, 1]
        );
        assert_eq!(fixed_arities(&c3, &[]), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "packing length")]
    fn saturates_panics_on_length_mismatch() {
        let t2 = ConjunctiveQuery::star(2);
        saturates(&t2, &[1.0], &[], 1e-9);
    }
}
