//! Output-size bounds via fractional edge covers (Section 2.4).
//!
//! Friedgut's inequality, instantiated with the 0/1 indicator vectors of the
//! relations, yields the AGM-style bound on the number of query answers:
//! for any fractional edge **cover** `u` of `q`,
//!
//! ```text
//!   |q(I)| ≤ Π_j |S_j|^{u_j}
//! ```
//!
//! and the best such bound uses the optimal cover. For the triangle this is
//! the famous `|C_3| ≤ √(|S_1|·|S_2|·|S_3|)`. The HyperCube analysis uses
//! the *packing* side of the same machinery; the cover side is exposed here
//! so experiments can sanity-check intermediate and final result sizes, and
//! so tests can verify Friedgut's inequality numerically on concrete
//! instances.

use crate::query::ConjunctiveQuery;
use pq_lp::{ConstraintOp, LinearProgram, Objective};
use pq_relation::Database;
use std::collections::BTreeMap;

/// The optimal fractional edge cover (weights per atom, in atom order) and
/// its value `ρ*`.
pub fn optimal_edge_cover(query: &ConjunctiveQuery) -> (Vec<f64>, f64) {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let vars: Vec<_> = query
        .atoms()
        .iter()
        .map(|a| lp.add_variable(format!("u_{}", a.relation())))
        .collect();
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0);
    }
    for variable in query.variables() {
        let terms: Vec<_> = query
            .atoms()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains(&variable))
            .map(|(j, _)| (vars[j], 1.0))
            .collect();
        lp.add_constraint(terms, ConstraintOp::Ge, 1.0);
    }
    let sol = lp
        .solve()
        .expect("edge-cover LP of a full CQ is feasible (all-ones covers)");
    (sol.values, sol.objective)
}

/// The AGM bound `Π_j m_j^{u_j}` for a given edge cover `u` and
/// cardinalities keyed by relation name (in tuples).
pub fn agm_bound_for_cover(
    query: &ConjunctiveQuery,
    cover: &[f64],
    cardinalities: &BTreeMap<String, usize>,
) -> f64 {
    assert_eq!(cover.len(), query.num_atoms(), "one weight per atom");
    query
        .atoms()
        .iter()
        .zip(cover.iter())
        .map(|(a, &u)| {
            let m = *cardinalities
                .get(a.relation())
                .unwrap_or_else(|| panic!("no cardinality for `{}`", a.relation()))
                as f64;
            m.max(1.0).powf(u)
        })
        .product()
}

/// The tightest AGM bound: minimise `Π_j m_j^{u_j}` over fractional edge
/// covers. This is a linear program in log-space (minimise
/// `Σ_j u_j·ln m_j` subject to the cover constraints).
pub fn agm_bound(query: &ConjunctiveQuery, cardinalities: &BTreeMap<String, usize>) -> f64 {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let vars: Vec<_> = query
        .atoms()
        .iter()
        .map(|a| lp.add_variable(format!("u_{}", a.relation())))
        .collect();
    for (j, atom) in query.atoms().iter().enumerate() {
        let m = *cardinalities
            .get(atom.relation())
            .unwrap_or_else(|| panic!("no cardinality for `{}`", atom.relation()))
            as f64;
        lp.set_objective_coefficient(vars[j], m.max(1.0).ln());
    }
    for variable in query.variables() {
        let terms: Vec<_> = query
            .atoms()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains(&variable))
            .map(|(j, _)| (vars[j], 1.0))
            .collect();
        lp.add_constraint(terms, ConstraintOp::Ge, 1.0);
    }
    let sol = lp.solve().expect("log-space AGM LP is feasible and bounded");
    sol.objective.exp()
}

/// Check the AGM bound against the actual answer count of an instance
/// (used by tests and experiments): returns `(answers, bound)`.
pub fn verify_agm_bound(query: &ConjunctiveQuery, database: &Database) -> (usize, f64) {
    let answers = crate::evaluate::evaluate_sequential(query, database).len();
    let bound = agm_bound(query, &database.cardinalities());
    (answers, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{DataGenerator, Relation, Schema};

    fn equal_cardinalities(q: &ConjunctiveQuery, m: usize) -> BTreeMap<String, usize> {
        q.relation_names().into_iter().map(|r| (r, m)).collect()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() / b.abs().max(1.0) < 1e-6
    }

    #[test]
    fn triangle_agm_bound_is_m_to_three_halves() {
        let q = ConjunctiveQuery::triangle();
        let card = equal_cardinalities(&q, 10_000);
        let bound = agm_bound(&q, &card);
        assert!(close(bound, 10_000f64.powf(1.5)));
        let (cover, rho) = optimal_edge_cover(&q);
        assert!(close(rho, 1.5));
        assert!(close(agm_bound_for_cover(&q, &cover, &card), bound));
    }

    #[test]
    fn chain_agm_bound_uses_alternating_cover() {
        // L_3: optimal cover (1, 0, 1)... actually cover needs every
        // variable covered: (1,0,1) covers x0,x1 (S1) and x2,x3 (S3): yes,
        // rho* = 2 and the bound is m^2.
        let q = ConjunctiveQuery::chain(3);
        let card = equal_cardinalities(&q, 1_000);
        assert!(close(agm_bound(&q, &card), 1e6));
    }

    #[test]
    fn star_agm_bound_is_product_of_relations() {
        // T_k: rho* = k (each S_j must cover its private x_j), bound = m^k.
        let q = ConjunctiveQuery::star(3);
        let card = equal_cardinalities(&q, 100);
        assert!(close(agm_bound(&q, &card), 1e6));
    }

    #[test]
    fn unequal_cardinalities_shift_the_cover() {
        // Simple join S1(z,x1), S2(z,x2): cover must put weight 1 on each
        // atom (each has a private variable), bound = m1·m2 regardless of
        // sizes.
        let q = ConjunctiveQuery::simple_join();
        let mut card = BTreeMap::new();
        card.insert("S1".to_string(), 10usize);
        card.insert("S2".to_string(), 1_000usize);
        assert!(close(agm_bound(&q, &card), 10_000.0));
    }

    #[test]
    fn actual_answers_never_exceed_the_bound_on_matchings() {
        let mut gen = DataGenerator::new(3, 1 << 16);
        for q in [
            ConjunctiveQuery::triangle(),
            ConjunctiveQuery::chain(3),
            ConjunctiveQuery::star(2),
            ConjunctiveQuery::cycle(4),
        ] {
            let specs: Vec<(Schema, usize)> = q
                .atoms()
                .iter()
                .map(|a| {
                    let cols: Vec<String> = (0..a.arity()).map(|i| format!("c{i}")).collect();
                    (Schema::new(a.relation(), cols), 300)
                })
                .collect();
            let db = gen.matching_database(&specs);
            let (answers, bound) = verify_agm_bound(&q, &db);
            assert!(
                (answers as f64) <= bound * (1.0 + 1e-9),
                "{}: {answers} answers exceed the AGM bound {bound}",
                q.name()
            );
        }
    }

    #[test]
    fn bound_is_tight_for_the_all_identical_instance() {
        // Worst-case instance for the simple join: all tuples share z.
        let q = ConjunctiveQuery::simple_join();
        let m = 50u64;
        let mut db = pq_relation::Database::new(1 << 12);
        for name in ["S1", "S2"] {
            db.insert(Relation::from_rows(
                Schema::from_strs(name, &["a", "b"]),
                (0..m).map(|i| vec![0, i + 1]).collect(),
            ));
        }
        let (answers, bound) = verify_agm_bound(&q, &db);
        assert_eq!(answers as u64, m * m);
        assert!(close(bound, (m * m) as f64));
    }

    #[test]
    #[should_panic(expected = "no cardinality")]
    fn missing_cardinality_panics() {
        let q = ConjunctiveQuery::triangle();
        agm_bound(&q, &BTreeMap::new());
    }
}
