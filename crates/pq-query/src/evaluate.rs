//! Binding atoms to relation instances and sequential evaluation.
//!
//! The database stores relations under the atom's relation name, with
//! positional columns. Binding renames the columns to the atom's variables
//! (handling repeated variables by an equality selection), after which the
//! conjunctive query is exactly the natural join of the bound relations,
//! projected onto the head variables. Sequential evaluation on a single
//! server is the correctness oracle every distributed algorithm is compared
//! against.

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use pq_relation::{natural_join_all, Database, Relation, Schema};

/// Bind a stored relation to an atom: the result has one column per
/// *distinct* variable of the atom, named after the variables.
///
/// Repeated variables in the atom (e.g. `S(x, x)`) induce an equality
/// selection on the corresponding positions before projection.
///
/// # Panics
/// Panics when the stored relation's arity differs from the atom's arity.
pub fn bind_atom(atom: &Atom, stored: &Relation) -> Relation {
    assert_eq!(
        stored.arity(),
        atom.arity(),
        "relation `{}` has arity {}, but atom `{}` expects {}",
        stored.name(),
        stored.arity(),
        atom,
        atom.arity()
    );
    let distinct = atom.distinct_variables();
    let schema = Schema::new(atom.relation(), distinct.clone());
    if distinct.len() == atom.arity() {
        // No repeated variables: binding is a pure column rename, one flat
        // buffer copy.
        return stored.with_schema(schema);
    }
    // Position of the first occurrence of each distinct variable, and the
    // equality checks repeated variables induce — both resolved once, before
    // the scan.
    let first_positions: Vec<usize> = distinct
        .iter()
        .map(|v| {
            atom.variables()
                .iter()
                .position(|w| w == v)
                .expect("distinct variable occurs in atom")
        })
        .collect();
    let equality_checks: Vec<(usize, usize)> = atom
        .variables()
        .iter()
        .enumerate()
        .filter_map(|(i, v)| {
            let first = atom.variables().iter().position(|w| w == v).expect("occurs");
            (first != i).then_some((i, first))
        })
        .collect();
    let mut out = Relation::empty(schema);
    for row in stored.iter() {
        if equality_checks.iter().all(|&(i, first)| row[i] == row[first]) {
            out.push_row_projected(row, &first_positions);
        }
    }
    out
}

/// Bind every atom of the query to its relation in the database, in atom
/// order.
///
/// # Panics
/// Panics when a relation named in the query is missing from the database
/// or has the wrong arity.
pub fn instantiate(query: &ConjunctiveQuery, database: &Database) -> Vec<Relation> {
    query
        .atoms()
        .iter()
        .map(|atom| bind_atom(atom, database.expect_relation(atom.relation())))
        .collect()
}

/// Evaluate the query sequentially (single server): the natural join of all
/// bound atoms projected onto the query's variables, with set semantics.
/// The output relation is named after the query and has one column per
/// query variable, in [`ConjunctiveQuery::variables`] order.
pub fn evaluate_sequential(query: &ConjunctiveQuery, database: &Database) -> Relation {
    let bound = instantiate(query, database);
    evaluate_bound(query, &bound)
}

/// Evaluate the query over already-bound relations (one per atom, schema
/// attributes named by query variables). Exposed so distributed algorithms
/// can reuse the same local-evaluation code on whatever fragments a server
/// received.
pub fn evaluate_bound(query: &ConjunctiveQuery, bound: &[Relation]) -> Relation {
    let joined = natural_join_all(bound);
    let head = query.variables();
    let mut out = joined.project(&head, query.name());
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{DataGenerator, Tuple};

    fn triangle_db() -> Database {
        let mut db = Database::new(100);
        db.insert(Relation::from_rows(
            Schema::from_strs("S1", &["a", "b"]),
            vec![vec![1, 2], vec![4, 5], vec![7, 8]],
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S2", &["a", "b"]),
            vec![vec![2, 3], vec![5, 6], vec![8, 9]],
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S3", &["a", "b"]),
            vec![vec![3, 1], vec![6, 4], vec![9, 70]],
        ));
        db
    }

    #[test]
    fn binding_renames_columns_to_variables() {
        let atom = Atom::from_strs("S1", &["x", "y"]);
        let stored = Relation::from_rows(
            Schema::from_strs("S1", &["col0", "col1"]),
            vec![vec![1, 2]],
        );
        let bound = bind_atom(&atom, &stored);
        assert_eq!(
            bound.schema().attributes(),
            &["x".to_string(), "y".to_string()]
        );
        assert_eq!(bound.row(0), &[1, 2]);
    }

    #[test]
    fn binding_with_repeated_variable_selects_diagonal() {
        let atom = Atom::from_strs("S", &["x", "x"]);
        let stored = Relation::from_rows(
            Schema::from_strs("S", &["a", "b"]),
            vec![vec![1, 1], vec![2, 3], vec![4, 4]],
        );
        let bound = bind_atom(&atom, &stored);
        assert_eq!(bound.arity(), 1);
        assert_eq!(bound.len(), 2);
        let c = bound.canonicalized();
        assert_eq!(c.to_tuples(), vec![Tuple::from([1]), Tuple::from([4])]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn binding_with_wrong_arity_panics() {
        let atom = Atom::from_strs("S", &["x", "y", "z"]);
        let stored = Relation::from_rows(Schema::from_strs("S", &["a", "b"]), vec![vec![1, 2]]);
        bind_atom(&atom, &stored);
    }

    #[test]
    fn triangle_query_finds_both_triangles() {
        let db = triangle_db();
        let out = evaluate_sequential(&ConjunctiveQuery::triangle(), &db);
        let out = out.canonicalized();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out.to_tuples(),
            vec![Tuple::from([1, 2, 3]), Tuple::from([4, 5, 6])]
        );
        assert_eq!(
            out.schema().attributes(),
            &["x1".to_string(), "x2".to_string(), "x3".to_string()]
        );
    }

    #[test]
    fn chain_query_on_matching_database() {
        // Identity matchings: L3 answer has exactly m tuples.
        let mut db = Database::new(1000);
        for j in 1..=3 {
            db.insert(Relation::from_rows(
                Schema::from_strs(&format!("S{j}"), &["a", "b"]),
                (0..50).map(|i| vec![i, i]).collect(),
            ));
        }
        let out = evaluate_sequential(&ConjunctiveQuery::chain(3), &db);
        assert_eq!(out.len(), 50);
        assert_eq!(out.arity(), 4);
    }

    #[test]
    fn star_query_groups_on_shared_variable() {
        let mut db = Database::new(1000);
        db.insert(Relation::from_rows(
            Schema::from_strs("S1", &["a", "b"]),
            vec![vec![1, 10], vec![1, 11], vec![2, 20]],
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S2", &["a", "b"]),
            vec![vec![1, 100], vec![2, 200]],
        ));
        let out = evaluate_sequential(&ConjunctiveQuery::star(2), &db);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn random_matching_database_answer_count_is_plausible() {
        // On random matchings over a huge domain, the expected number of
        // chain-query answers is tiny; just confirm evaluation runs and
        // output arity is right.
        let mut gen = DataGenerator::new(3, 1 << 20);
        let q = ConjunctiveQuery::chain(2);
        let db = gen.matching_database(&[
            (Schema::from_strs("S1", &["a", "b"]), 1000),
            (Schema::from_strs("S2", &["a", "b"]), 1000),
        ]);
        let out = evaluate_sequential(&q, &db);
        assert_eq!(out.arity(), 3);
        assert!(out.len() <= 1000);
    }

    #[test]
    fn empty_relation_gives_empty_answer() {
        let mut db = triangle_db();
        db.insert(Relation::empty(Schema::from_strs("S2", &["a", "b"])));
        let out = evaluate_sequential(&ConjunctiveQuery::triangle(), &db);
        assert!(out.is_empty());
        assert_eq!(out.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn missing_relation_panics() {
        let db = Database::new(10);
        evaluate_sequential(&ConjunctiveQuery::triangle(), &db);
    }
}
