//! A lock-free, log-bucketed histogram for latency-style measurements.
//!
//! Values (unsigned integers, typically microseconds or bytes) are counted
//! into geometrically growing buckets: every power-of-two octave is split
//! into [`SUB_BUCKETS`] sub-buckets, so any recorded value lands in a
//! bucket whose width is at most a quarter of its lower bound. Quantile
//! readouts therefore carry a bounded **relative** error: the reported
//! p50/p95/p99 is never below the exact order statistic and never more
//! than `exact/4 + 1` above it (see [`LogHistogram::quantile`]), which is
//! plenty for latency monitoring while keeping the whole histogram at 256
//! atomic slots — cheap enough to update from every query on the hot path
//! with one atomic add and no locks.
//!
//! Count and sum are tracked exactly (plain atomic adds), so concurrent
//! recordings from any number of threads merge losslessly: the final
//! `count`/`sum` equal what a single-threaded recording of the same values
//! would produce, and [`LogHistogram::merge_from`] folds one histogram
//! into another bucket-by-bucket with no information loss beyond the
//! bucketing itself.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of sub-buckets per power-of-two octave (4 ⇒ ≤25 % bucket width).
pub const SUB_BUCKETS: usize = 4;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 2
/// Total number of buckets; exactly covers the whole `u64` range
/// (`SUB_BUCKETS` singleton buckets + `SUB_BUCKETS` per octave for the
/// 62 octaves from `SUB_BUCKETS` up to `u64::MAX`).
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// The bucket index of `value`. Values below [`SUB_BUCKETS`] get exact
/// singleton buckets; larger values share a bucket with at most 25 % of
/// their neighbours.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exponent = 63 - value.leading_zeros(); // >= SUB_BITS
    let shift = exponent - SUB_BITS;
    let top = (value >> shift) as usize; // in [SUB_BUCKETS, 2*SUB_BUCKETS)
    (exponent as usize - SUB_BITS as usize) * SUB_BUCKETS + top
}

/// The inclusive `[lower, upper]` value range of bucket `index` — the
/// inverse of [`bucket_index`].
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let offset = index - SUB_BUCKETS;
    let shift = (offset / SUB_BUCKETS) as u32; // exponent - SUB_BITS
    let top = (offset % SUB_BUCKETS + SUB_BUCKETS) as u64;
    let lower = top << shift;
    let width = 1u64 << shift;
    (lower, lower + (width - 1))
}

/// A fixed-size, atomically updated, log-bucketed histogram.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value: one relaxed atomic add into its bucket, plus the
    /// exact count/sum updates. Safe to call from any number of threads.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in whole microseconds.
    pub fn observe_micros(&self, duration: std::time::Duration) {
        self.observe(duration.as_micros() as u64);
    }

    /// Number of recorded values (exact).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (exact, wrapping only past `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded values, as the
    /// upper bound of the bucket holding the order statistic of that rank.
    ///
    /// Guarantee: for the exact `q`-quantile `x` of the recorded values
    /// (the `ceil(q·count)`-th smallest), the returned estimate `e`
    /// satisfies `x <= e <= x + x/4 + 1` — never an underestimate, at most
    /// a quarter high. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bounds(index).1;
            }
        }
        // Counter updates racing this scan can leave `seen < rank`; the
        // largest non-empty bucket is then the best answer.
        for (index, bucket) in self.buckets.iter().enumerate().rev() {
            if bucket.load(Ordering::Relaxed) > 0 {
                return bucket_bounds(index).1;
            }
        }
        0
    }

    /// Fold `other` into `self`, bucket by bucket. Lossless with respect to
    /// the bucketed representation: counts, sums and every bucket add up
    /// exactly, so quantiles of the merge equal quantiles of recording both
    /// value streams into one histogram.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the aggregates the exposition formats print.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// The aggregates of a [`LogHistogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Estimated median (upper bucket bound; see [`LogHistogram::quantile`]).
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (exact, from count and sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        // Every bucket's bounds map back to the bucket, boundaries
        // included, and consecutive buckets tile the line with no gaps.
        let mut next_expected = 0u64;
        for index in 0..NUM_BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(lower, next_expected, "gap before bucket {index}");
            assert!(lower <= upper);
            assert_eq!(bucket_index(lower), index);
            assert_eq!(bucket_index(upper), index);
            if upper == u64::MAX {
                return; // the last bucket closes the range
            }
            next_expected = upper + 1;
        }
        assert_eq!(next_expected - 1, u64::MAX, "buckets must cover u64");
    }

    #[test]
    fn bucket_width_is_bounded_relative_to_its_lower_bound() {
        for index in SUB_BUCKETS..NUM_BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            assert!(
                upper - lower <= lower / SUB_BUCKETS as u64,
                "bucket {index} [{lower}, {upper}] wider than lower/4"
            );
        }
    }

    #[test]
    fn tiny_values_are_exact() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 2, 3] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.75), 2);
        assert_eq!(h.quantile(1.0), 3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 6);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.p99), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_bound_the_exact_order_statistic() {
        let h = LogHistogram::new();
        let values: Vec<u64> = (0..1000u64).map(|i| i * i % 7919 + 1).collect();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let exact = sorted[((q * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1)];
            let estimate = h.quantile(q);
            assert!(estimate >= exact, "q={q}: {estimate} < exact {exact}");
            assert!(
                estimate <= exact + exact / 4 + 1,
                "q={q}: {estimate} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_bucketwise_lossless() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let merged_directly = LogHistogram::new();
        for v in 0..500u64 {
            a.observe(v * 3);
            merged_directly.observe(v * 3);
        }
        for v in 0..300u64 {
            b.observe(v * 17 + 1);
            merged_directly.observe(v * 17 + 1);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), merged_directly.count());
        assert_eq!(a.sum(), merged_directly.sum());
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), merged_directly.quantile(q), "q={q}");
        }
    }

    #[test]
    fn huge_values_do_not_overflow_the_bucket_table() {
        let h = LogHistogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= u64::MAX / 2);
    }
}
