//! The metrics registry: named, labelled counters, gauges and histograms.
//!
//! A [`MetricsRegistry`] is the cumulative, process-lifetime store behind
//! `pqd METRICS` and `pqsh metrics`. Registration (`counter`/`gauge`/
//! `histogram`) takes a short write lock on first sight of a name+labels
//! combination and a read lock afterwards; the returned handles are `Arc`s
//! of plain atomics, so the *instrumented hot path never locks* — callers
//! resolve handles once (at engine construction, or lazily per label
//! value) and then update them with single atomic adds.
//!
//! Metric naming follows the Prometheus conventions the exposition module
//! renders: `snake_case` names with a `_total` suffix for counters, and
//! labels as sorted `key="value"` pairs. One name must keep one kind —
//! registering `foo` as a counter and again as a gauge is a programming
//! error and panics (debug builds) or yields a detached handle (release).

use crate::histogram::{HistogramSnapshot, LogHistogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A metric identity: name plus sorted `(key, value)` label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`pq_queries_total`, …).
    pub name: String,
    /// Label pairs, sorted by key (sorted at construction, so two
    /// registrations with reordered labels are the same metric).
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key for `name` with the given labels (sorted internally).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; updates are single relaxed atomic adds.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can be set or moved in either direction.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero under races no worse than one
    /// transient underflow-free retry.
    pub fn sub(&self, n: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared handle to a registered [`LogHistogram`].
pub type Histogram = Arc<LogHistogram>;

/// What kind of metric a name holds (fixed at first registration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Settable gauge.
    Gauge,
    /// Log-bucketed histogram, exposed as a quantile summary.
    Histogram,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<MetricKey, Counter>,
    gauges: BTreeMap<MetricKey, Gauge>,
    histograms: BTreeMap<MetricKey, Histogram>,
    /// Name → (kind, help text), fixed at first registration.
    meta: BTreeMap<String, (MetricKind, String)>,
}

/// The process-lifetime metrics store. Cheap to share (`Arc` it once);
/// see the module docs for the locking story.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
    enabled: AtomicBool,
}

impl MetricsRegistry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: RwLock::default(),
            enabled: AtomicBool::new(true),
        }
    }

    /// Whether instrumentation sites should record at all. The flag does
    /// not change handle behaviour — it is the *instrumented code's* cheap
    /// up-front check for stripping its whole recording block (what the
    /// `engine_obs` benchmark toggles).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off (see [`MetricsRegistry::is_enabled`]).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Get or create the counter `name{labels}`. `help` is kept from the
    /// first registration of `name` and rendered by the exposition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let key = MetricKey::new(name, labels);
        if let Some(found) = self.read(|inner| inner.counters.get(&key).cloned()) {
            return found;
        }
        self.write(|inner| {
            Self::keep_kind(inner, name, MetricKind::Counter, help);
            inner.counters.entry(key).or_default().clone()
        })
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let key = MetricKey::new(name, labels);
        if let Some(found) = self.read(|inner| inner.gauges.get(&key).cloned()) {
            return found;
        }
        self.write(|inner| {
            Self::keep_kind(inner, name, MetricKind::Gauge, help);
            inner.gauges.entry(key).or_default().clone()
        })
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        let key = MetricKey::new(name, labels);
        if let Some(found) = self.read(|inner| inner.histograms.get(&key).cloned()) {
            return found;
        }
        self.write(|inner| {
            Self::keep_kind(inner, name, MetricKind::Histogram, help);
            inner.histograms.entry(key).or_default().clone()
        })
    }

    /// The current value of an already-registered counter (0 when the
    /// counter does not exist — reading never creates).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = MetricKey::new(name, labels);
        self.read(|inner| inner.counters.get(&key).map_or(0, Counter::get))
    }

    /// A point-in-time copy of every registered metric, sorted by name and
    /// labels — the input of the exposition formats.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.read(|inner| MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            help: inner
                .meta
                .iter()
                .map(|(name, (kind, help))| (name.clone(), (*kind, help.clone())))
                .collect(),
        })
    }

    fn keep_kind(inner: &mut Inner, name: &str, kind: MetricKind, help: &str) {
        match inner.meta.get(name) {
            Some((registered, _)) => debug_assert_eq!(
                *registered, kind,
                "metric `{name}` registered as two different kinds"
            ),
            None => {
                inner
                    .meta
                    .insert(name.to_string(), (kind, help.to_string()));
            }
        }
    }

    fn read<R>(&self, f: impl FnOnce(&Inner) -> R) -> R {
        f(&self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn write<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        f(&mut self.inner.write().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Every metric's value at one instant, sorted — what
/// [`crate::expose::prometheus_text`] and [`crate::expose::json_text`]
/// render.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values by key.
    pub gauges: Vec<(MetricKey, u64)>,
    /// Histogram aggregates by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
    /// Name → (kind, help) metadata.
    pub help: BTreeMap<String, (MetricKind, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_the_registry() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("pq_test_total", &[("kind", "x")], "test counter");
        let b = registry.counter("pq_test_total", &[("kind", "x")], "ignored");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.counter_value("pq_test_total", &[("kind", "x")]), 3);
        // A different label value is a different series.
        assert_eq!(registry.counter_value("pq_test_total", &[("kind", "y")]), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("c_total", &[("a", "1"), ("b", "2")], "");
        let b = registry.counter("c_total", &[("b", "2"), ("a", "1")], "");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauges_move_both_ways_and_saturate() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("g", &[], "a gauge");
        g.set(5);
        g.add(3);
        g.sub(6);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates at zero");
    }

    #[test]
    fn snapshot_is_sorted_and_carries_help() {
        let registry = MetricsRegistry::new();
        registry.counter("b_total", &[], "bees").inc();
        registry.counter("a_total", &[], "ayes").add(2);
        registry.histogram("h_micros", &[("op", "x")], "aitch").observe(7);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot
            .counters
            .iter()
            .map(|(k, _)| k.name.as_str())
            .collect();
        assert_eq!(names, vec!["a_total", "b_total"]);
        assert_eq!(snapshot.help["a_total"], (MetricKind::Counter, "ayes".into()));
        assert_eq!(snapshot.histograms[0].1.count, 1);
    }

    #[test]
    fn enabled_flag_round_trips() {
        let registry = MetricsRegistry::new();
        assert!(registry.is_enabled());
        registry.set_enabled(false);
        assert!(!registry.is_enabled());
    }
}
