//! Span-style query-lifecycle tracing.
//!
//! A [`QueryTrace`] stamps one query with a process-unique id and records
//! how long each lifecycle [`Phase`] took (parse → cache lookup → plan →
//! execute, plus one span per communication round when the query runs on
//! the cluster backend) together with the outcome labels the observability
//! surface reports: strategy chosen, backend, cache hit/miss, rows out and
//! measured bytes on the wire.
//!
//! A trace is plain data — building one does not require a
//! [`crate::MetricsRegistry`] — so `pqsh ANALYZE` can print a phase
//! breakdown for a single query while `pqd` additionally folds every
//! trace into its cumulative registry and uses the same struct to render
//! `--slow-query-ms` log lines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide monotonically increasing query id source.
static NEXT_QUERY_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate the next process-unique query id (starting at 1).
pub fn next_query_id() -> u64 {
    NEXT_QUERY_ID.fetch_add(1, Ordering::Relaxed)
}

/// A lifecycle phase of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Parsing the query text into the AST.
    Parse,
    /// Plan-cache lookup (the span covers the probe, not a following plan).
    CacheLookup,
    /// Planning / strategy selection (only on a cache miss).
    Plan,
    /// Executing the chosen plan (covers all rounds).
    Execute,
    /// One communication round within execution (cluster backend).
    Round(u32),
}

impl Phase {
    /// Stable lowercase name used in logs and the ANALYZE output
    /// (`round` phases render as `round0`, `round1`, …).
    pub fn name(&self) -> String {
        match self {
            Phase::Parse => "parse".to_string(),
            Phase::CacheLookup => "cache_lookup".to_string(),
            Phase::Plan => "plan".to_string(),
            Phase::Execute => "execute".to_string(),
            Phase::Round(i) => format!("round{i}"),
        }
    }
}

/// One completed span: a phase and how long it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Which phase.
    pub phase: Phase,
    /// Wall-clock duration of the phase.
    pub duration: Duration,
}

/// The full lifecycle record of one query.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Process-unique query id.
    pub query_id: u64,
    /// Completed phase spans, in the order they finished.
    pub spans: Vec<PhaseSpan>,
    /// Strategy label of the chosen plan (e.g. `one-round HyperCube`).
    pub strategy: Option<String>,
    /// Backend label (`simulator` or `cluster`).
    pub backend: Option<String>,
    /// Whether the plan cache served this query (`None` = no lookup).
    pub cache_hit: Option<bool>,
    /// Number of result rows.
    pub rows_out: Option<u64>,
    /// Measured bytes on the wire (cluster backend; simulator reports 0).
    pub bytes_on_wire: Option<u64>,
    /// Executor-pool parallelism the query ran under (worker threads plus
    /// the helping caller; 1 = fully inline).
    pub parallelism: Option<u64>,
    started: Instant,
    total: Option<Duration>,
}

impl QueryTrace {
    /// Start a trace for a fresh query id.
    pub fn start() -> Self {
        QueryTrace {
            query_id: next_query_id(),
            spans: Vec::new(),
            strategy: None,
            backend: None,
            cache_hit: None,
            rows_out: None,
            bytes_on_wire: None,
            parallelism: None,
            started: Instant::now(),
            total: None,
        }
    }

    /// Time `f` as one `phase` span, recording it on completion.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(phase, start.elapsed());
        result
    }

    /// Record an externally measured span.
    pub fn record(&mut self, phase: Phase, duration: Duration) {
        self.spans.push(PhaseSpan { phase, duration });
    }

    /// Mark the query finished; from now on [`QueryTrace::total`] is fixed.
    pub fn finish(&mut self) {
        if self.total.is_none() {
            self.total = Some(self.started.elapsed());
        }
    }

    /// Total wall-clock time: start-to-[`finish`](QueryTrace::finish), or
    /// start-to-now while the query is still in flight.
    pub fn total(&self) -> Duration {
        self.total.unwrap_or_else(|| self.started.elapsed())
    }

    /// The duration of the first span for `phase`, if recorded.
    pub fn phase_duration(&self, phase: Phase) -> Option<Duration> {
        self.spans
            .iter()
            .find(|s| s.phase == phase)
            .map(|s| s.duration)
    }

    /// A compact single-line `key=value` rendering of the whole trace —
    /// the payload of slow-query log lines. Example:
    /// `query_id=7 total_micros=1234 parse_micros=10 execute_micros=1200
    /// strategy="one-round HyperCube" cache=hit rows=200 bytes_on_wire=0`.
    pub fn summary_fields(&self) -> Vec<(String, String)> {
        let mut fields = vec![
            ("query_id".to_string(), self.query_id.to_string()),
            (
                "total_micros".to_string(),
                (self.total().as_micros() as u64).to_string(),
            ),
        ];
        for span in &self.spans {
            fields.push((
                format!("{}_micros", span.phase.name()),
                (span.duration.as_micros() as u64).to_string(),
            ));
        }
        if let Some(strategy) = &self.strategy {
            fields.push(("strategy".to_string(), strategy.clone()));
        }
        if let Some(backend) = &self.backend {
            fields.push(("backend".to_string(), backend.clone()));
        }
        if let Some(hit) = self.cache_hit {
            fields.push((
                "cache".to_string(),
                if hit { "hit" } else { "miss" }.to_string(),
            ));
        }
        if let Some(rows) = self.rows_out {
            fields.push(("rows".to_string(), rows.to_string()));
        }
        if let Some(bytes) = self.bytes_on_wire {
            fields.push(("bytes_on_wire".to_string(), bytes.to_string()));
        }
        if let Some(parallelism) = self.parallelism {
            fields.push(("parallelism".to_string(), parallelism.to_string()));
        }
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_ids_are_unique_and_increasing() {
        let a = next_query_id();
        let b = next_query_id();
        assert!(b > a);
        let t1 = QueryTrace::start();
        let t2 = QueryTrace::start();
        assert!(t2.query_id > t1.query_id);
    }

    #[test]
    fn time_records_a_span_and_passes_the_result_through() {
        let mut trace = QueryTrace::start();
        let answer = trace.time(Phase::Parse, || 42);
        assert_eq!(answer, 42);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].phase, Phase::Parse);
        assert!(trace.phase_duration(Phase::Parse).is_some());
        assert!(trace.phase_duration(Phase::Plan).is_none());
    }

    #[test]
    fn finish_freezes_total() {
        let mut trace = QueryTrace::start();
        trace.finish();
        let t1 = trace.total();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(trace.total(), t1);
    }

    #[test]
    fn summary_fields_cover_phases_and_outcomes() {
        let mut trace = QueryTrace::start();
        trace.record(Phase::Parse, Duration::from_micros(10));
        trace.record(Phase::Round(0), Duration::from_micros(5));
        trace.strategy = Some("one-round HyperCube".to_string());
        trace.cache_hit = Some(true);
        trace.rows_out = Some(200);
        trace.parallelism = Some(4);
        trace.finish();
        let fields = trace.summary_fields();
        let get = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("parse_micros"), Some("10".to_string()));
        assert_eq!(get("round0_micros"), Some("5".to_string()));
        assert_eq!(get("strategy"), Some("one-round HyperCube".to_string()));
        assert_eq!(get("cache"), Some("hit".to_string()));
        assert_eq!(get("rows"), Some("200".to_string()));
        assert_eq!(get("parallelism"), Some("4".to_string()));
        assert_eq!(get("query_id"), Some(trace.query_id.to_string()));
    }
}
