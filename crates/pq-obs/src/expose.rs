//! Text exposition of a [`MetricsSnapshot`]: Prometheus format and JSON.
//!
//! Both renderings are fully deterministic — the snapshot is already
//! sorted by metric name and labels, help text is fixed at first
//! registration, and no timestamps are emitted — so golden tests can
//! compare output byte-for-byte.
//!
//! Histograms are exposed as Prometheus **summaries**: one
//! `name{quantile="0.5|0.95|0.99"}` sample per precomputed quantile plus
//! `name_sum` and `name_count`. That keeps a 252-bucket histogram down to
//! five lines per series while preserving exactly the readout the
//! monitoring story needs (p50/p95/p99 with exact count and sum).

use crate::registry::{MetricKey, MetricsSnapshot};
use std::fmt::Write as _;

/// Escape a label value for the Prometheus text format: backslash, double
/// quote and newline must be escaped, everything else passes through.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render `{key="value",...}` (empty string for no labels). `extra` is an
/// optional pre-rendered pair appended last (used for `quantile="..."`).
fn render_labels(key: &MetricKey, extra: Option<&str>) -> String {
    if key.labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(extra) = extra {
        parts.push(extra.to_string());
    }
    format!("{{{}}}", parts.join(","))
}

fn type_line(out: &mut String, name: &str, snapshot: &MetricsSnapshot, prometheus_type: &str) {
    if let Some((_, help)) = snapshot.help.get(name) {
        if !help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {help}");
        }
    }
    let _ = writeln!(out, "# TYPE {name} {prometheus_type}");
}

/// Render the snapshot in the Prometheus text exposition format
/// (version 0.0.4). Counters and gauges are plain samples; histograms are
/// summaries with `quantile` labels plus `_sum` and `_count` series.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    let emit_header = |out: &mut String, name: &str, last: &Option<&str>, ty: &str| {
        if *last != Some(name) {
            type_line(out, name, snapshot, ty);
        }
    };

    for (key, value) in &snapshot.counters {
        emit_header(&mut out, &key.name, &last_name, "counter");
        last_name = Some(&key.name);
        let _ = writeln!(out, "{}{} {}", key.name, render_labels(key, None), value);
    }
    for (key, value) in &snapshot.gauges {
        emit_header(&mut out, &key.name, &last_name, "gauge");
        last_name = Some(&key.name);
        let _ = writeln!(out, "{}{} {}", key.name, render_labels(key, None), value);
    }
    for (key, h) in &snapshot.histograms {
        emit_header(&mut out, &key.name, &last_name, "summary");
        last_name = Some(&key.name);
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            let labels = render_labels(key, Some(&format!("quantile=\"{q}\"")));
            let _ = writeln!(out, "{}{} {}", key.name, labels, v);
        }
        let labels = render_labels(key, None);
        let _ = writeln!(out, "{}_sum{} {}", key.name, labels, h.sum);
        let _ = writeln!(out, "{}_count{} {}", key.name, labels, h.count);
    }
    out
}

/// Escape a string for a JSON string literal (control characters, quote,
/// backslash).
fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

fn json_labels(key: &MetricKey) -> String {
    let pairs: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Render the snapshot as a JSON document:
/// `{"counters":[{name,labels,value}...],"gauges":[...],`
/// `"histograms":[{name,labels,count,sum,mean,p50,p95,p99}...]}`.
/// Hand-rolled (the workspace's `serde` is an offline no-op shim) and
/// deterministic for golden tests.
pub fn json_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":[");
    let mut first = true;
    for (key, value) in &snapshot.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            escape_json(&key.name),
            json_labels(key),
            value
        );
    }
    out.push_str("],\"gauges\":[");
    first = true;
    for (key, value) in &snapshot.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            escape_json(&key.name),
            json_labels(key),
            value
        );
    }
    out.push_str("],\"histograms\":[");
    first = true;
    for (key, h) in &snapshot.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape_json(&key.name),
            json_labels(key),
            h.count,
            h.sum,
            h.mean(),
            h.p50,
            h.p95,
            h.p99
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry
            .counter("pq_queries_total", &[("status", "ok")], "Queries served")
            .add(3);
        registry
            .counter("pq_queries_total", &[("status", "error")], "Queries served")
            .inc();
        registry.gauge("pq_connections", &[], "Open connections").set(2);
        let h = registry.histogram(
            "pq_query_latency_micros",
            &[("strategy", "one-round HyperCube")],
            "Query latency",
        );
        for v in [10u64, 20, 30, 40] {
            h.observe(v);
        }
        registry
    }

    #[test]
    fn prometheus_output_is_golden() {
        let text = prometheus_text(&sample_registry().snapshot());
        let expected = "\
# HELP pq_queries_total Queries served
# TYPE pq_queries_total counter
pq_queries_total{status=\"error\"} 1
pq_queries_total{status=\"ok\"} 3
# HELP pq_connections Open connections
# TYPE pq_connections gauge
pq_connections 2
# HELP pq_query_latency_micros Query latency
# TYPE pq_query_latency_micros summary
pq_query_latency_micros{strategy=\"one-round HyperCube\",quantile=\"0.5\"} 23
pq_query_latency_micros{strategy=\"one-round HyperCube\",quantile=\"0.95\"} 47
pq_query_latency_micros{strategy=\"one-round HyperCube\",quantile=\"0.99\"} 47
pq_query_latency_micros_sum{strategy=\"one-round HyperCube\"} 100
pq_query_latency_micros_count{strategy=\"one-round HyperCube\"} 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_output_is_golden() {
        let json = json_text(&sample_registry().snapshot());
        let expected = concat!(
            "{\"counters\":[",
            "{\"name\":\"pq_queries_total\",\"labels\":{\"status\":\"error\"},\"value\":1},",
            "{\"name\":\"pq_queries_total\",\"labels\":{\"status\":\"ok\"},\"value\":3}",
            "],\"gauges\":[",
            "{\"name\":\"pq_connections\",\"labels\":{},\"value\":2}",
            "],\"histograms\":[",
            "{\"name\":\"pq_query_latency_micros\",",
            "\"labels\":{\"strategy\":\"one-round HyperCube\"},",
            "\"count\":4,\"sum\":100,\"mean\":25.0,\"p50\":23,\"p95\":47,\"p99\":47}",
            "]}"
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry
            .counter("c_total", &[("q", "say \"hi\"\\\n")], "")
            .inc();
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("c_total{q=\"say \\\"hi\\\"\\\\\\n\"} 1"));
        let json = json_text(&registry.snapshot());
        assert!(json.contains("\"q\":\"say \\\"hi\\\"\\\\\\n\""));
    }

    #[test]
    fn shared_type_header_is_emitted_once_per_name() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert_eq!(
            text.matches("# TYPE pq_queries_total counter").count(),
            1,
            "one TYPE line for both label sets"
        );
    }
}
