//! A structured, leveled logger with `key=value` fields.
//!
//! Log lines look like
//!
//! ```text
//! 2026-08-08T12:34:56.789Z  INFO pqd connection closed peer=127.0.0.1:9 queries=3
//! ```
//!
//! — UTC timestamp, level, target, message, then sorted-by-insertion
//! `key=value` fields (values are quoted when they contain whitespace or
//! quotes). The implementation is std-only: the RFC 3339 timestamp is
//! derived from [`std::time::SystemTime`] with the standard civil-from-days
//! calendar algorithm, no external time crate.
//!
//! A [`Logger`] is cheap to clone and share; filtering happens at emit
//! time against its [`LogLevel`], so `logger.debug("…")` on an `info`
//! logger allocates one small builder and writes nothing. Output goes to
//! stderr by default; tests (and pqd's own tests) can swap in a
//! [`Sink::Buffer`] and assert on captured lines.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log verbosity, ordered: `Quiet < Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Suppress everything.
    Quiet,
    /// Errors only.
    Error,
    /// Errors and warnings (slow-query lines log at this level).
    Warn,
    /// Normal operational events (default).
    Info,
    /// Everything, including per-query details.
    Debug,
}

impl LogLevel {
    /// Parse a level name (case-insensitive): `quiet`, `error`, `warn`,
    /// `info`, `debug`.
    pub fn parse(name: &str) -> Option<LogLevel> {
        match name.to_ascii_lowercase().as_str() {
            "quiet" | "off" => Some(LogLevel::Quiet),
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            LogLevel::Quiet => "QUIET",
            LogLevel::Error => "ERROR",
            LogLevel::Warn => " WARN",
            LogLevel::Info => " INFO",
            LogLevel::Debug => "DEBUG",
        }
    }
}

/// Where emitted lines go.
#[derive(Debug, Clone)]
pub enum Sink {
    /// Write each line to standard error (the default).
    Stderr,
    /// Append each line to a shared buffer (for tests).
    Buffer(Arc<Mutex<Vec<String>>>),
}

/// A shareable structured logger; see the module docs for the line format.
#[derive(Debug, Clone)]
pub struct Logger {
    target: &'static str,
    level: LogLevel,
    sink: Sink,
}

impl Logger {
    /// A stderr logger for `target` at `level`.
    pub fn new(target: &'static str, level: LogLevel) -> Self {
        Logger {
            target,
            level,
            sink: Sink::Stderr,
        }
    }

    /// The same logger writing into `buffer` instead of stderr.
    pub fn with_buffer(mut self, buffer: Arc<Mutex<Vec<String>>>) -> Self {
        self.sink = Sink::Buffer(buffer);
        self
    }

    /// This logger's threshold level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether a message at `level` would be emitted.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level != LogLevel::Quiet && level <= self.level
    }

    /// Start an `ERROR` event.
    pub fn error(&self, message: impl Into<String>) -> Event<'_> {
        self.at(LogLevel::Error, message)
    }

    /// Start a `WARN` event.
    pub fn warn(&self, message: impl Into<String>) -> Event<'_> {
        self.at(LogLevel::Warn, message)
    }

    /// Start an `INFO` event.
    pub fn info(&self, message: impl Into<String>) -> Event<'_> {
        self.at(LogLevel::Info, message)
    }

    /// Start a `DEBUG` event.
    pub fn debug(&self, message: impl Into<String>) -> Event<'_> {
        self.at(LogLevel::Debug, message)
    }

    /// Start an event at an explicit level.
    pub fn at(&self, level: LogLevel, message: impl Into<String>) -> Event<'_> {
        Event {
            logger: self,
            level,
            message: message.into(),
            fields: Vec::new(),
        }
    }

    fn emit(&self, level: LogLevel, message: &str, fields: &[(String, String)]) {
        if !self.enabled(level) {
            return;
        }
        let mut line = format!(
            "{} {} {} {}",
            format_rfc3339_millis(SystemTime::now()),
            level.tag(),
            self.target,
            message
        );
        for (key, value) in fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            if value.is_empty()
                || value
                    .chars()
                    .any(|c| c.is_whitespace() || c == '"' || c == '=')
            {
                line.push('"');
                line.push_str(&value.replace('\\', "\\\\").replace('"', "\\\""));
                line.push('"');
            } else {
                line.push_str(value);
            }
        }
        match &self.sink {
            Sink::Stderr => eprintln!("{line}"),
            Sink::Buffer(buffer) => buffer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(line),
        }
    }
}

/// A log event under construction: add `key=value` fields with
/// [`Event::kv`], then [`Event::emit`] it.
#[must_use = "a log event does nothing until .emit() is called"]
#[derive(Debug)]
pub struct Event<'a> {
    logger: &'a Logger,
    level: LogLevel,
    message: String,
    fields: Vec<(String, String)>,
}

impl Event<'_> {
    /// Attach one `key=value` field (kept in insertion order).
    pub fn kv(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// Attach every field from an iterator of pairs.
    pub fn kvs(mut self, pairs: impl IntoIterator<Item = (String, String)>) -> Self {
        self.fields.extend(pairs);
        self
    }

    /// Write the line to the logger's sink (no-op below the threshold).
    pub fn emit(self) {
        self.logger.emit(self.level, &self.message, &self.fields);
    }
}

/// Format a [`SystemTime`] as RFC 3339 UTC with millisecond precision
/// (`2026-08-08T12:34:56.789Z`). Times before the epoch clamp to it.
pub fn format_rfc3339_millis(time: SystemTime) -> String {
    let since_epoch = time.duration_since(UNIX_EPOCH).unwrap_or_default();
    let secs = since_epoch.as_secs();
    let millis = since_epoch.subsec_millis();
    let days = (secs / 86_400) as i64;
    let seconds_of_day = secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        seconds_of_day / 3600,
        seconds_of_day % 3600 / 60,
        seconds_of_day % 60,
    )
}

/// Days-since-epoch → (year, month, day) in the proleptic Gregorian
/// calendar (Howard Hinnant's `civil_from_days` algorithm).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // day of year [0, 365]
    let mp = (5 * doy + 2) / 153; // March-based month [0, 11]
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if month <= 2 { year + 1 } else { year }, month, day)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn buffered(level: LogLevel) -> (Logger, Arc<Mutex<Vec<String>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let logger = Logger::new("test", level).with_buffer(buffer.clone());
        (logger, buffer)
    }

    #[test]
    fn timestamps_are_rfc3339() {
        let t = UNIX_EPOCH + Duration::from_millis(0);
        assert_eq!(format_rfc3339_millis(t), "1970-01-01T00:00:00.000Z");
        // 2026-08-08T00:00:00Z = 1786147200 seconds after the epoch.
        let t = UNIX_EPOCH + Duration::from_secs(1_786_147_200);
        assert_eq!(format_rfc3339_millis(t), "2026-08-08T00:00:00.000Z");
        // Leap-year day: 2024-02-29T12:00:00Z = 1709208000.
        let t = UNIX_EPOCH + Duration::from_millis(1_709_208_000_123);
        assert_eq!(format_rfc3339_millis(t), "2024-02-29T12:00:00.123Z");
    }

    #[test]
    fn levels_filter() {
        let (logger, buffer) = buffered(LogLevel::Info);
        logger.debug("hidden").emit();
        logger.info("shown").emit();
        logger.error("also shown").emit();
        let lines = buffer.lock().unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(" INFO test shown"));
        assert!(lines[1].contains("ERROR test also shown"));
    }

    #[test]
    fn quiet_suppresses_everything() {
        let (logger, buffer) = buffered(LogLevel::Quiet);
        logger.error("nope").emit();
        assert!(buffer.lock().unwrap().is_empty());
    }

    #[test]
    fn fields_render_in_order_and_quote_when_needed() {
        let (logger, buffer) = buffered(LogLevel::Debug);
        logger
            .info("msg")
            .kv("peer", "127.0.0.1:9999")
            .kv("strategy", "one-round HyperCube")
            .kv("rows", 200)
            .emit();
        let lines = buffer.lock().unwrap();
        assert!(lines[0]
            .ends_with("msg peer=127.0.0.1:9999 strategy=\"one-round HyperCube\" rows=200"));
    }

    #[test]
    fn level_parsing() {
        assert_eq!(LogLevel::parse("INFO"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("quiet"), Some(LogLevel::Quiet));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("bogus"), None);
        assert!(LogLevel::Warn < LogLevel::Info);
    }
}
