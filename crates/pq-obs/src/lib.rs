//! # pq-obs — observability for the parallel-query engine
//!
//! A dependency-free (std-only, offline-safe) observability subsystem for
//! the workspace: every crate on the serving path — `pq-mpc`'s networked
//! coordinator/worker, `pq-engine`'s planner/cache/executor, and the
//! `pqd`/`pqsh` binaries — records into the same small set of primitives,
//! and `pqd METRICS` exposes the result in Prometheus text or JSON.
//!
//! The paper this repository reproduces (Beame, Koutris and Suciu,
//! *Communication Cost in Parallel Query Processing*) is ultimately about
//! an observable quantity — the per-round communication load
//! `L = M/p^{1/τ*}` — so the wire-byte counters recorded here are not
//! generic ops plumbing: they are the measured side of the theory the
//! engine implements, aggregated across every query a server ever ran.
//!
//! ## Pieces
//!
//! - [`MetricsRegistry`] ([`registry`]): named, labelled counters, gauges
//!   and histograms. Handle resolution locks briefly; recording is a
//!   single relaxed atomic add, so instrumentation is safe on the query
//!   hot path. A registry-wide `enabled` flag lets instrumented code skip
//!   its whole recording block (used by the `engine_obs` benchmark to
//!   measure instrumentation overhead).
//! - [`LogHistogram`] ([`histogram`]): lock-free log-bucketed latency
//!   histogram with bounded-relative-error `p50/p95/p99` readout, exact
//!   count and sum, and lossless merging.
//! - [`QueryTrace`] ([`trace`]): per-query lifecycle spans
//!   (parse → cache lookup → plan → execute → per-round) plus outcome
//!   labels — the data behind `pqsh ANALYZE` and `pqd --slow-query-ms`.
//! - [`Logger`] ([`logger`]): structured leveled logging with UTC
//!   timestamps and `key=value` fields, replacing ad-hoc `eprintln!`s.
//! - [`prometheus_text`] / [`json_text`] ([`expose`]): deterministic text
//!   exposition of a [`MetricsSnapshot`].
//!
//! ## Example
//!
//! ```
//! use pq_obs::{MetricsRegistry, prometheus_text};
//!
//! let registry = MetricsRegistry::new();
//! let served = registry.counter(
//!     "pq_queries_total",
//!     &[("status", "ok")],
//!     "Queries served by outcome",
//! );
//! let latency = registry.histogram("pq_query_latency_micros", &[], "Query latency");
//!
//! served.inc();
//! latency.observe(1_250);
//!
//! let text = prometheus_text(&registry.snapshot());
//! assert!(text.contains("pq_queries_total{status=\"ok\"} 1"));
//! assert!(text.contains("pq_query_latency_micros_count 1"));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod expose;
pub mod histogram;
pub mod logger;
pub mod registry;
pub mod trace;

pub use expose::{json_text, prometheus_text};
pub use histogram::{HistogramSnapshot, LogHistogram};
pub use logger::{format_rfc3339_millis, Event, LogLevel, Logger, Sink};
pub use registry::{Counter, Gauge, Histogram, MetricKey, MetricKind, MetricsRegistry, MetricsSnapshot};
pub use trace::{next_query_id, Phase, PhaseSpan, QueryTrace};
