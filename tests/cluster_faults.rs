//! Network fault injection for the cluster backend: every way a worker can
//! misbehave — dying before the round, dying mid-round, truncating a frame,
//! or going silent — must surface as a *typed* [`ClusterError`] within the
//! configured timeout. No test here may hang: the coordinator's read
//! timeout and the write-then-barrier round structure are exactly what
//! these tests hold to account.
//!
//! The faulty peers are hand-rolled socket threads, not [`serve_worker`]
//! loops: the real worker is deliberately incapable of answering with a
//! truncated frame or staying silent, so the faults are injected at the
//! raw byte level beneath the codec.

use pq_mpc::net::{
    read_frame, serve_worker, shutdown_workers, AtomSpec, BreakerState, Clock, ClusterConfig,
    ClusterError, Coordinator, Frame, LocalWorkers, RetryPolicy, RoundProgram, TestClock,
    WorkerPool, MAGIC,
};
use pq_mpc::Message;
use pq_relation::{Relation, Schema};
use proptest::prelude::*;
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a fake worker does after accepting its one connection.
#[derive(Clone, Copy)]
enum Fault {
    /// Close the socket immediately, before even reading the Hello.
    DieOnAccept,
    /// Read frames up to the round's Execute, then close without answering
    /// — a worker crashing mid-round, after the shuffle reached it.
    DieMidRound,
    /// Read up to the Execute, then send a frame whose length prefix
    /// promises more payload than follows, and close.
    TruncateAnswer,
    /// Read everything, answer nothing, hold the connection open.
    Silent,
}

/// Spawn a fake worker exhibiting `fault`; returns its address and the
/// thread handle (joined by the test to prove the peer exited too).
fn faulty_worker(fault: Fault) -> (String, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let address = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        serve_fault(stream, fault);
    });
    (address, handle)
}

fn serve_fault(stream: TcpStream, fault: Fault) {
    if matches!(fault, Fault::DieOnAccept) {
        return; // drop the stream: RST or EOF at the coordinator
    }
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    // Consume frames (Hello, fragments) until the round's Execute.
    loop {
        match read_frame(&mut reader) {
            Ok(Some((Frame::Execute { .. }, _))) => break,
            Ok(Some(_)) => continue,
            // The coordinator gave up and closed first (e.g. its write
            // failed): nothing more to inject.
            Ok(None) | Err(_) => return,
        }
    }
    match fault {
        Fault::DieOnAccept => unreachable!("handled above"),
        Fault::DieMidRound => (), // drop both halves without answering
        Fault::TruncateAnswer => {
            // A syntactically valid frame start — magic, Answer type byte,
            // a 100-byte length prefix — followed by only 10 payload bytes.
            let mut partial = Vec::new();
            partial.extend_from_slice(&MAGIC);
            partial.push(4); // Frame::Answer's type byte
            partial.extend_from_slice(&100u32.to_le_bytes());
            partial.extend_from_slice(&[0u8; 10]);
            let _ = writer.write_all(&partial);
            let _ = writer.flush();
        }
        Fault::Silent => {
            // Hold the connection open and unanswered until the
            // coordinator hangs up; then exit so the join below returns.
            let mut sink = [0u8; 256];
            while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

/// A minimal single-join round: R(x, y) ⋈ S(y, z) over p = 2 logical
/// servers, everything broadcast, so every worker sees traffic before the
/// fault fires.
fn round_messages() -> Vec<Message> {
    let r = Relation::from_rows(
        Schema::from_strs("R", &["x", "y"]),
        vec![vec![1, 2], vec![3, 4]],
    );
    let s = Relation::from_rows(Schema::from_strs("S", &["y", "z"]), vec![vec![2, 20]]);
    let mut messages = Vec::new();
    for to in 0..2 {
        messages.push(Message::tuples(to, r.clone()));
        messages.push(Message::tuples(to, s.clone()));
    }
    messages
}

fn round_program() -> RoundProgram {
    RoundProgram {
        name: "Q".into(),
        output_vars: vec!["x".into(), "y".into(), "z".into()],
        atoms: vec![
            AtomSpec {
                relation: "R".into(),
                variables: vec!["x".into(), "y".into()],
            },
            AtomSpec {
                relation: "S".into(),
                variables: vec!["y".into(), "z".into()],
            },
        ],
    }
}

/// Drive one round against a single faulty worker and return the typed
/// error, bounding the whole exchange by `deadline`.
fn run_against(fault: Fault, timeout: Duration, deadline: Duration) -> ClusterError {
    let (address, handle) = faulty_worker(fault);
    let config = ClusterConfig::new(vec![address]).with_read_timeout(timeout);
    let started = Instant::now();
    let error = match Coordinator::connect(&config, 2, 8) {
        // Connect can already observe the death (write or RST); that is a
        // typed error too, and the test asserts on whatever surfaced.
        Err(e) => e,
        Ok(mut coordinator) => {
            let result = coordinator.run_round(round_messages(), &round_program());
            let error = result.expect_err("a faulty worker must fail the round");
            drop(coordinator); // hang up so the Silent peer's read loop ends
            error
        }
    };
    assert!(
        started.elapsed() < deadline,
        "fault must surface within {deadline:?}, took {:?}",
        started.elapsed()
    );
    handle.join().expect("faulty worker thread exits");
    error
}

#[test]
fn a_worker_dying_before_the_round_is_a_typed_error() {
    let error = run_against(
        Fault::DieOnAccept,
        Duration::from_secs(5),
        Duration::from_secs(10),
    );
    // Depending on how fast the RST lands, the death shows up as a failed
    // write (Io), a closed read (Died) or a torn frame — never a hang, and
    // never an untyped panic.
    assert!(
        matches!(
            error,
            ClusterError::Io { .. } | ClusterError::Died { .. } | ClusterError::Frame { .. }
        ),
        "unexpected error for a dead-on-accept worker: {error}"
    );
}

#[test]
fn a_worker_dying_mid_round_is_reported_dead() {
    let error = run_against(
        Fault::DieMidRound,
        Duration::from_secs(5),
        Duration::from_secs(10),
    );
    assert!(
        matches!(
            error,
            ClusterError::Died { .. } | ClusterError::Io { .. } | ClusterError::Frame { .. }
        ),
        "unexpected error for a mid-round death: {error}"
    );
}

#[test]
fn a_truncated_answer_frame_is_a_frame_error() {
    let error = run_against(
        Fault::TruncateAnswer,
        Duration::from_secs(5),
        Duration::from_secs(10),
    );
    assert!(
        matches!(error, ClusterError::Frame { worker: 0, .. }),
        "a torn frame must be a Frame error, got: {error}"
    );
}

#[test]
fn a_silent_worker_times_out_within_the_configured_deadline() {
    let timeout = Duration::from_millis(500);
    let started = Instant::now();
    let error = run_against(Fault::Silent, timeout, Duration::from_secs(5));
    assert!(
        matches!(error, ClusterError::Timeout { worker: 0, .. }),
        "a silent worker must be a Timeout, got: {error}"
    );
    // The barrier gave up soon after the read timeout — it did not wait
    // for some unrelated, longer deadline.
    assert!(
        started.elapsed() >= timeout,
        "the timeout cannot fire early"
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "a 500 ms read timeout must not take {:?}",
        started.elapsed()
    );
}

/// The answer the round must produce, computed with a textbook
/// nested-loop join over the same R and S rows — independent of every
/// cluster code path, so it can act as the oracle for the recovery and
/// chaos tests below.
fn oracle_join() -> Vec<Vec<u64>> {
    let r = [[1u64, 2], [3, 4]];
    let s = [[2u64, 20]];
    let mut rows: Vec<Vec<u64>> = r
        .iter()
        .flat_map(|&[x, y]| {
            s.iter()
                .filter(move |&&[sy, _]| sy == y)
                .map(move |&[_, z]| vec![x, y, z])
        })
        .collect();
    rows.sort();
    rows
}

fn sorted_rows(output: &Relation) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = output.iter().map(|t| t.to_vec()).collect();
    rows.sort();
    rows
}

/// A pool tuned for the fault tests: short read timeout so Silent faults
/// surface quickly, a few retries, millisecond backoff.
fn resilient_pool(addresses: Vec<String>, retries: u32) -> WorkerPool {
    WorkerPool::new(
        ClusterConfig::new(addresses)
            .with_read_timeout(Duration::from_millis(300))
            .with_retry(RetryPolicy {
                retries,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(20),
            }),
    )
}

/// Every injected fault, driven through the pool instead of a bare
/// coordinator: with two healthy workers beside the faulty one (majority
/// floor 2 of 3), the run must *recover* — retry on a rebuilt topology,
/// route around the dead peer, and return the exact answer — instead of
/// surfacing the error the bare-coordinator tests above assert on.
#[test]
fn every_fault_is_recovered_by_a_pool_retry() {
    for fault in [
        Fault::DieOnAccept,
        Fault::DieMidRound,
        Fault::TruncateAnswer,
        Fault::Silent,
    ] {
        let workers = LocalWorkers::spawn(2).expect("spawn");
        let (faulty_address, handle) = faulty_worker(fault);
        let mut addresses = workers.addresses().to_vec();
        addresses.push(faulty_address);
        let pool = resilient_pool(addresses, 4);
        let (output, metrics) = pool
            .execute(2, 8, 0, &round_program(), &|| round_messages(), None)
            .expect("the pool must recover from a single faulty worker");
        assert_eq!(sorted_rows(&output), oracle_join());
        assert_eq!(
            metrics.rounds[0].wire_bytes.len(),
            2,
            "the successful attempt routed around the faulty worker"
        );
        let stats = pool.stats();
        assert!(stats.retries >= 1, "recovery implies at least one retry: {stats:?}");
        assert_eq!(stats.runs_ok, 1);
        drop(pool);
        workers.shutdown();
        handle.join().expect("faulty worker thread exits");
    }
}

/// A flapping cluster: every worker down long enough for consecutive
/// failed runs to open the breaker, which then fails fast without
/// touching a socket; once the cooldown elapses (on the injected test
/// clock) the half-open probe is admitted and — the workers having come
/// back on the same addresses — closes the breaker again.
#[test]
fn a_flapping_cluster_opens_the_breaker_then_recovers_through_half_open() {
    // Bind three listeners to learn their addresses, then drop them: the
    // cluster starts fully down, every dial refused.
    let addresses: Vec<String> = (0..3)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        })
        .collect();
    let clock = Arc::new(TestClock::new());
    let config = ClusterConfig::new(addresses.clone())
        .with_read_timeout(Duration::from_millis(300))
        .with_retry(RetryPolicy {
            retries: 0,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
        })
        .with_breaker(2, Duration::from_secs(5));
    let pool = WorkerPool::with_clock(config, clock.clone());
    let run = || pool.execute(2, 8, 0, &round_program(), &|| round_messages(), None);
    assert!(run().is_err());
    assert!(run().is_err());
    assert_eq!(pool.breaker_state(), BreakerState::Open);
    // Open: fail fast, no dial attempted.
    let reconnects_before = pool.stats().reconnects;
    let err = run().unwrap_err();
    assert!(matches!(err, ClusterError::BreakerOpen { .. }), "{err}");
    assert_eq!(pool.stats().reconnects, reconnects_before);
    // The workers come back on the same ports while the breaker cools off.
    let handles: Vec<JoinHandle<()>> = addresses
        .iter()
        .map(|address| {
            let listener = TcpListener::bind(address.as_str()).expect("rebind");
            std::thread::spawn(move || {
                serve_worker(&listener).expect("worker serves");
            })
        })
        .collect();
    clock.sleep(Duration::from_secs(5));
    let (output, _) = run().expect("the half-open probe reaches the revived workers");
    assert_eq!(sorted_rows(&output), oracle_join());
    assert_eq!(
        pool.breaker_state(),
        BreakerState::Closed,
        "a successful half-open probe closes the breaker"
    );
    shutdown_workers(pool.config());
    for handle in handles {
        handle.join().expect("worker thread exits");
    }
}

// Chaos: a random fault schedule over three workers — each either healthy
// or exhibiting one of the four injected faults. Whenever the pool reports
// success, its answer must equal the oracle join; with a healthy majority
// it must not fail at all, and with a faulty majority it must fail
// (typed, within the deadline) rather than hang or fabricate rows.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chaos_schedules_agree_with_the_oracle_whenever_they_succeed(
        schedule in proptest::collection::vec(0usize..6, 3..4),
    ) {
        // 0–3 pick a fault; 4–5 mean healthy, biasing ~1 fault per run.
        let faults = [
            Fault::DieOnAccept,
            Fault::DieMidRound,
            Fault::TruncateAnswer,
            Fault::Silent,
        ];
        let mut addresses = Vec::new();
        let mut fault_handles = Vec::new();
        let mut healthy_handles = Vec::new();
        let mut healthy = 0usize;
        for &choice in &schedule {
            if let Some(&fault) = faults.get(choice) {
                let (address, handle) = faulty_worker(fault);
                addresses.push(address);
                fault_handles.push(handle);
            } else {
                healthy += 1;
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
                addresses.push(listener.local_addr().expect("addr").to_string());
                healthy_handles.push(std::thread::spawn(move || {
                    serve_worker(&listener).expect("worker serves");
                }));
            }
        }
        let config = pool_addresses_config(&addresses);
        let pool = WorkerPool::new(config);
        let result = pool.execute(2, 8, 0, &round_program(), &|| round_messages(), None);
        let majority = addresses.len() / 2 + 1;
        match result {
            Ok((output, _)) => {
                prop_assert_eq!(sorted_rows(&output), oracle_join());
                prop_assert!(
                    healthy >= majority,
                    "a run without a healthy majority must not succeed"
                );
            }
            Err(error) => {
                prop_assert!(
                    healthy < majority,
                    "a healthy majority must recover, got: {error}"
                );
            }
        }
        shutdown_workers(pool.config());
        drop(pool);
        for handle in healthy_handles {
            handle.join().expect("healthy worker exits");
        }
        for handle in fault_handles {
            handle.join().expect("faulty worker exits");
        }
    }
}

/// The chaos pool's config: same tuning as [`resilient_pool`], factored
/// so the proptest body stays readable.
fn pool_addresses_config(addresses: &[String]) -> ClusterConfig {
    ClusterConfig::new(addresses.to_vec())
        .with_read_timeout(Duration::from_millis(300))
        .with_retry(RetryPolicy {
            retries: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
        })
}

/// A healthy round straight after a faulty one on a fresh coordinator:
/// fault handling must not poison process-global state.
#[test]
fn a_fresh_coordinator_recovers_after_a_fault() {
    let _ = run_against(
        Fault::DieMidRound,
        Duration::from_secs(5),
        Duration::from_secs(10),
    );
    let workers = pq_mpc::net::LocalWorkers::spawn(1).expect("spawn");
    let config = ClusterConfig::new(workers.addresses().to_vec());
    let mut coordinator = Coordinator::connect(&config, 2, 8).expect("connect");
    let output = coordinator
        .run_round(round_messages(), &round_program())
        .expect("healthy round");
    let mut rows: Vec<Vec<u64>> = output.iter().map(|t| t.to_vec()).collect();
    rows.sort();
    assert_eq!(rows, vec![vec![1, 2, 20]]);
    drop(coordinator);
    workers.shutdown();
}
