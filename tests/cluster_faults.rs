//! Network fault injection for the cluster backend: every way a worker can
//! misbehave — dying before the round, dying mid-round, truncating a frame,
//! or going silent — must surface as a *typed* [`ClusterError`] within the
//! configured timeout. No test here may hang: the coordinator's read
//! timeout and the write-then-barrier round structure are exactly what
//! these tests hold to account.
//!
//! The faulty peers are hand-rolled socket threads, not [`serve_worker`]
//! loops: the real worker is deliberately incapable of answering with a
//! truncated frame or staying silent, so the faults are injected at the
//! raw byte level beneath the codec.

use pq_mpc::net::{
    read_frame, AtomSpec, ClusterConfig, ClusterError, Coordinator, Frame, RoundProgram, MAGIC,
};
use pq_mpc::Message;
use pq_relation::{Relation, Schema};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a fake worker does after accepting its one connection.
#[derive(Clone, Copy)]
enum Fault {
    /// Close the socket immediately, before even reading the Hello.
    DieOnAccept,
    /// Read frames up to the round's Execute, then close without answering
    /// — a worker crashing mid-round, after the shuffle reached it.
    DieMidRound,
    /// Read up to the Execute, then send a frame whose length prefix
    /// promises more payload than follows, and close.
    TruncateAnswer,
    /// Read everything, answer nothing, hold the connection open.
    Silent,
}

/// Spawn a fake worker exhibiting `fault`; returns its address and the
/// thread handle (joined by the test to prove the peer exited too).
fn faulty_worker(fault: Fault) -> (String, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let address = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        serve_fault(stream, fault);
    });
    (address, handle)
}

fn serve_fault(stream: TcpStream, fault: Fault) {
    if matches!(fault, Fault::DieOnAccept) {
        return; // drop the stream: RST or EOF at the coordinator
    }
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    // Consume frames (Hello, fragments) until the round's Execute.
    loop {
        match read_frame(&mut reader) {
            Ok(Some((Frame::Execute { .. }, _))) => break,
            Ok(Some(_)) => continue,
            // The coordinator gave up and closed first (e.g. its write
            // failed): nothing more to inject.
            Ok(None) | Err(_) => return,
        }
    }
    match fault {
        Fault::DieOnAccept => unreachable!("handled above"),
        Fault::DieMidRound => (), // drop both halves without answering
        Fault::TruncateAnswer => {
            // A syntactically valid frame start — magic, Answer type byte,
            // a 100-byte length prefix — followed by only 10 payload bytes.
            let mut partial = Vec::new();
            partial.extend_from_slice(&MAGIC);
            partial.push(4); // Frame::Answer's type byte
            partial.extend_from_slice(&100u32.to_le_bytes());
            partial.extend_from_slice(&[0u8; 10]);
            let _ = writer.write_all(&partial);
            let _ = writer.flush();
        }
        Fault::Silent => {
            // Hold the connection open and unanswered until the
            // coordinator hangs up; then exit so the join below returns.
            let mut sink = [0u8; 256];
            while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

/// A minimal single-join round: R(x, y) ⋈ S(y, z) over p = 2 logical
/// servers, everything broadcast, so every worker sees traffic before the
/// fault fires.
fn round_messages() -> Vec<Message> {
    let r = Relation::from_rows(
        Schema::from_strs("R", &["x", "y"]),
        vec![vec![1, 2], vec![3, 4]],
    );
    let s = Relation::from_rows(Schema::from_strs("S", &["y", "z"]), vec![vec![2, 20]]);
    let mut messages = Vec::new();
    for to in 0..2 {
        messages.push(Message::tuples(to, r.clone()));
        messages.push(Message::tuples(to, s.clone()));
    }
    messages
}

fn round_program() -> RoundProgram {
    RoundProgram {
        name: "Q".into(),
        output_vars: vec!["x".into(), "y".into(), "z".into()],
        atoms: vec![
            AtomSpec {
                relation: "R".into(),
                variables: vec!["x".into(), "y".into()],
            },
            AtomSpec {
                relation: "S".into(),
                variables: vec!["y".into(), "z".into()],
            },
        ],
    }
}

/// Drive one round against a single faulty worker and return the typed
/// error, bounding the whole exchange by `deadline`.
fn run_against(fault: Fault, timeout: Duration, deadline: Duration) -> ClusterError {
    let (address, handle) = faulty_worker(fault);
    let config = ClusterConfig::new(vec![address]).with_read_timeout(timeout);
    let started = Instant::now();
    let error = match Coordinator::connect(&config, 2, 8) {
        // Connect can already observe the death (write or RST); that is a
        // typed error too, and the test asserts on whatever surfaced.
        Err(e) => e,
        Ok(mut coordinator) => {
            let result = coordinator.run_round(round_messages(), &round_program());
            let error = result.expect_err("a faulty worker must fail the round");
            drop(coordinator); // hang up so the Silent peer's read loop ends
            error
        }
    };
    assert!(
        started.elapsed() < deadline,
        "fault must surface within {deadline:?}, took {:?}",
        started.elapsed()
    );
    handle.join().expect("faulty worker thread exits");
    error
}

#[test]
fn a_worker_dying_before_the_round_is_a_typed_error() {
    let error = run_against(
        Fault::DieOnAccept,
        Duration::from_secs(5),
        Duration::from_secs(10),
    );
    // Depending on how fast the RST lands, the death shows up as a failed
    // write (Io), a closed read (Died) or a torn frame — never a hang, and
    // never an untyped panic.
    assert!(
        matches!(
            error,
            ClusterError::Io { .. } | ClusterError::Died { .. } | ClusterError::Frame { .. }
        ),
        "unexpected error for a dead-on-accept worker: {error}"
    );
}

#[test]
fn a_worker_dying_mid_round_is_reported_dead() {
    let error = run_against(
        Fault::DieMidRound,
        Duration::from_secs(5),
        Duration::from_secs(10),
    );
    assert!(
        matches!(
            error,
            ClusterError::Died { .. } | ClusterError::Io { .. } | ClusterError::Frame { .. }
        ),
        "unexpected error for a mid-round death: {error}"
    );
}

#[test]
fn a_truncated_answer_frame_is_a_frame_error() {
    let error = run_against(
        Fault::TruncateAnswer,
        Duration::from_secs(5),
        Duration::from_secs(10),
    );
    assert!(
        matches!(error, ClusterError::Frame { worker: 0, .. }),
        "a torn frame must be a Frame error, got: {error}"
    );
}

#[test]
fn a_silent_worker_times_out_within_the_configured_deadline() {
    let timeout = Duration::from_millis(500);
    let started = Instant::now();
    let error = run_against(Fault::Silent, timeout, Duration::from_secs(5));
    assert!(
        matches!(error, ClusterError::Timeout { worker: 0, .. }),
        "a silent worker must be a Timeout, got: {error}"
    );
    // The barrier gave up soon after the read timeout — it did not wait
    // for some unrelated, longer deadline.
    assert!(
        started.elapsed() >= timeout,
        "the timeout cannot fire early"
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "a 500 ms read timeout must not take {:?}",
        started.elapsed()
    );
}

/// A healthy round straight after a faulty one on a fresh coordinator:
/// fault handling must not poison process-global state.
#[test]
fn a_fresh_coordinator_recovers_after_a_fault() {
    let _ = run_against(
        Fault::DieMidRound,
        Duration::from_secs(5),
        Duration::from_secs(10),
    );
    let workers = pq_mpc::net::LocalWorkers::spawn(1).expect("spawn");
    let config = ClusterConfig::new(workers.addresses().to_vec());
    let mut coordinator = Coordinator::connect(&config, 2, 8).expect("connect");
    let output = coordinator
        .run_round(round_messages(), &round_program())
        .expect("healthy round");
    let mut rows: Vec<Vec<u64>> = output.iter().map(|t| t.to_vec()).collect();
    rows.sort();
    assert_eq!(rows, vec![vec![1, 2, 20]]);
    drop(coordinator);
    workers.shutdown();
}
