//! Property-based tests (proptest) on the core invariants:
//!
//! * HyperCube output always equals the sequential oracle, for random
//!   databases (matching or skewed) and random cluster sizes;
//! * the characteristic identities of Lemma 2.1 hold for random queries;
//! * packing-polytope vertices are always feasible packings and `L(u,M,p)`
//!   never exceeds `L_lower`;
//! * integer shares never exceed the server budget;
//! * multi-round plans compute the query, whatever the fan-in.

use proptest::prelude::*;
use std::collections::BTreeMap;

use pq_core::bounds::one_round::{load_for_packing, lower_bound_load};
use pq_core::multiround::plan::{bushy_chain_plan, execute_plan};
use pq_core::shares::{grid_size, integer_shares, optimal_share_exponents, ShareRounding};
use pq_core::{hypercube, skew};
use pq_query::{characteristic, evaluate_sequential, packing, Atom, ConjunctiveQuery};
use pq_relation::{DataGenerator, Database, Relation, Schema};

/// Build a database for a query with uniformly random relations of the given
/// cardinality (duplicates removed), over a domain that guarantees plenty of
/// accidental joins.
fn random_database(query: &ConjunctiveQuery, m: usize, domain: u64, seed: u64) -> Database {
    let mut gen = DataGenerator::new(seed, domain.max(4));
    let mut db = Database::new(domain.max(4));
    for atom in query.atoms() {
        let cols: Vec<String> = (0..atom.arity()).map(|i| format!("c{i}")).collect();
        let rel = gen.uniform_relation(Schema::new(atom.relation(), cols), m);
        db.insert(rel);
    }
    db
}

/// A random connected binary query over at most 5 variables: a random tree
/// plus a few extra edges. Atom names are unique so there are no self-joins.
fn arbitrary_connected_query() -> impl Strategy<Value = ConjunctiveQuery> {
    (2usize..6, proptest::collection::vec(any::<u32>(), 0..4), any::<u32>()).prop_map(
        |(k, extra_edges, tree_seed)| {
            let mut atoms = Vec::new();
            let mut counter = 0usize;
            // Random tree over variables x0..x{k-1}.
            for i in 1..k {
                let parent = (tree_seed as usize + i * 7) % i;
                counter += 1;
                atoms.push(Atom::new(
                    format!("R{counter}"),
                    vec![format!("x{parent}"), format!("x{i}")],
                ));
            }
            for e in extra_edges {
                let a = (e as usize) % k;
                let b = (e as usize / 7) % k;
                if a != b {
                    counter += 1;
                    atoms.push(Atom::new(
                        format!("R{counter}"),
                        vec![format!("x{a}"), format!("x{b}")],
                    ));
                }
            }
            if atoms.is_empty() {
                atoms.push(Atom::new("R1", vec!["x0".to_string(), "x1".to_string()]));
            }
            ConjunctiveQuery::new("rand", atoms)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hypercube_always_matches_oracle_on_random_data(
        seed in 0u64..1000,
        m in 50usize..300,
        p in 2usize..40,
        domain in 16u64..400,
    ) {
        let query = ConjunctiveQuery::triangle();
        let db = random_database(&query, m, domain, seed);
        let run = hypercube::run_hypercube(&query, &db, p, seed ^ 0xABCD);
        let oracle = evaluate_sequential(&query, &db);
        prop_assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    }

    #[test]
    fn hypercube_matches_oracle_on_random_queries(
        query in arbitrary_connected_query(),
        seed in 0u64..1000,
        p in 2usize..30,
    ) {
        let db = random_database(&query, 80, 60, seed);
        let run = hypercube::run_hypercube(&query, &db, p, seed);
        let oracle = evaluate_sequential(&query, &db);
        prop_assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    }

    #[test]
    fn characteristic_is_nonnegative_and_contraction_identity_holds(
        query in arbitrary_connected_query(),
        mask in any::<u32>(),
    ) {
        let chi = characteristic::characteristic(&query);
        prop_assert!(chi >= 0, "chi must be non-negative");
        // Lemma 2.1(d): contraction never increases the characteristic.
        let l = query.num_atoms();
        let m: Vec<usize> = (0..l).filter(|i| mask & (1 << (i % 32)) != 0).collect();
        if !m.is_empty() && m.len() < l {
            let contracted = characteristic::contract(&query, &m);
            let chi_contracted = characteristic::characteristic(&contracted);
            prop_assert!(chi >= chi_contracted, "Lemma 2.1(d) violated");
            // Lemma 2.1(b): chi(q/M) = chi(q) - chi(M).
            let chi_m = characteristic::characteristic_of_atoms(&query, &m);
            prop_assert_eq!(chi_contracted, chi - chi_m);
        }
    }

    #[test]
    fn packing_vertices_are_feasible_and_bounded_by_lower_bound(
        query in arbitrary_connected_query(),
        p in 2usize..200,
    ) {
        let sizes: BTreeMap<String, u64> = query
            .relation_names()
            .into_iter()
            .map(|r| (r, 1u64 << 20))
            .collect();
        let size_vec: Vec<f64> = query.atoms().iter().map(|_| (1u64 << 20) as f64).collect();
        let lower = lower_bound_load(&query, &sizes, p);
        for u in packing::fractional_edge_packing_vertices(&query) {
            prop_assert!(packing::is_edge_packing(&query, &u, 1e-6));
            let load = load_for_packing(&u, &size_vec, p);
            prop_assert!(load <= lower * (1.0 + 1e-6));
        }
    }

    #[test]
    fn integer_shares_respect_the_server_budget(
        query in arbitrary_connected_query(),
        p in 2usize..500,
    ) {
        let sizes: BTreeMap<String, u64> = query
            .relation_names()
            .into_iter()
            .map(|r| (r, 1u64 << 22))
            .collect();
        let exps = optimal_share_exponents(&query, &sizes, p);
        for strategy in [ShareRounding::Floor, ShareRounding::GreedyFill] {
            let shares = integer_shares(&exps, strategy);
            prop_assert!(grid_size(&shares) <= p);
            prop_assert!(shares.values().all(|&s| s >= 1));
        }
    }

    #[test]
    fn bushy_plans_compute_chains_for_any_fan_in(
        k in 2usize..10,
        fan_in in 2usize..5,
        seed in 0u64..100,
    ) {
        let query = ConjunctiveQuery::chain(k);
        let db = random_database(&query, 60, 40, seed);
        let plan = bushy_chain_plan(k, fan_in);
        let run = execute_plan(&plan, &query, &db, 16, seed);
        let oracle = evaluate_sequential(&query, &db);
        prop_assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    }

    #[test]
    fn skew_aware_star_matches_oracle_on_random_skew(
        m in 100usize..400,
        heavy in 0usize..200,
        p in 2usize..32,
        seed in 0u64..1000,
    ) {
        let heavy = heavy.min(m);
        let query = ConjunctiveQuery::simple_join();
        // Random data plus a planted heavy hitter.
        let mut db = random_database(&query, m, 500, seed);
        for name in ["S1", "S2"] {
            let rel = db.relation_mut(name).expect("exists");
            for i in 0..heavy as u64 {
                rel.push(pq_relation::Tuple::from([0, 1000 + i]));
            }
        }
        let run = skew::star::run_star_skew_aware(&query, &db, p, seed);
        let oracle = evaluate_sequential(&query, &db);
        prop_assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    }

    #[test]
    fn relation_algebra_invariants(
        rows in proptest::collection::vec((0u64..50, 0u64..50), 0..200),
    ) {
        let rel = Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            rows.iter().map(|&(a, b)| vec![a, b]).collect(),
        );
        let other = Relation::from_rows(
            Schema::from_strs("S", &["y", "z"]),
            rows.iter().map(|&(a, b)| vec![b, a]).collect(),
        );
        // Semijoin + antijoin partition the relation.
        let semi = rel.semijoin(&other);
        let anti = rel.antijoin(&other);
        prop_assert_eq!(semi.len() + anti.len(), rel.len());
        // Join output size equals the sum over keys of the degree products.
        let join = pq_relation::natural_join(&rel, &other);
        let d_rel = rel.degree_map(&["y".to_string()]);
        let d_other = other.degree_map(&["y".to_string()]);
        let expected: usize = d_rel
            .iter()
            .map(|(k, c)| c * d_other.get(k).copied().unwrap_or(0))
            .sum();
        prop_assert_eq!(join.len(), expected);
    }
}
