//! End-to-end integration tests: generator → query → algorithm → simulator
//! → answer, compared against the sequential oracle for a spread of query
//! shapes, data distributions and cluster sizes.

use pq_bench::{hub_triangle_database, matching_database_for_query, skewed_star_database};
use pq_core::baselines::{broadcast_join, sequential_plan_join, single_server_join};
use pq_core::multiround::plan::{bushy_chain_plan, execute_plan, left_deep_plan, star_of_paths_plan};
use pq_core::prelude::*;
use pq_query::evaluate_sequential;

fn assert_same_answer(a: &Relation, b: &Relation, context: &str) {
    assert_eq!(a.canonicalized(), b.canonicalized(), "answer mismatch: {context}");
}

#[test]
fn hypercube_matches_oracle_across_queries_and_cluster_sizes() {
    let cases = vec![
        (ConjunctiveQuery::triangle(), 600usize),
        (ConjunctiveQuery::chain(2), 800),
        (ConjunctiveQuery::chain(4), 500),
        (ConjunctiveQuery::star(2), 800),
        (ConjunctiveQuery::star(4), 400),
        (ConjunctiveQuery::cycle(4), 500),
        (ConjunctiveQuery::star_of_paths(2), 400),
    ];
    for (query, m) in cases {
        let db = matching_database_for_query(&query, m, 0xC0FFEE);
        let oracle = evaluate_sequential(&query, &db);
        for p in [3usize, 8, 17, 64] {
            let run = run_hypercube(&query, &db, p, 5);
            assert_same_answer(
                &run.output,
                &oracle,
                &format!("{} on p={p}", query.name()),
            );
            assert_eq!(run.metrics.num_rounds(), 1);
        }
    }
}

#[test]
fn baselines_agree_with_hypercube() {
    let query = ConjunctiveQuery::triangle();
    let db = matching_database_for_query(&query, 500, 99);
    let oracle = evaluate_sequential(&query, &db);
    let p = 16;
    let hc = run_hypercube(&query, &db, p, 1);
    let single = single_server_join(&query, &db, p);
    let broadcast = broadcast_join(&query, &db, p);
    let sequential = sequential_plan_join(&query, &db, p, 1);
    for (name, out) in [
        ("hypercube", &hc.output),
        ("single-server", &single.output),
        ("broadcast", &broadcast.output),
        ("sequential-plan", &sequential.output),
    ] {
        assert_same_answer(out, &oracle, name);
    }
    // The whole point: HC's load is far below the single-server load.
    assert!(hc.metrics.max_load() < single.metrics.max_load() / 2);
}

#[test]
fn multi_round_plans_agree_with_one_round_hypercube() {
    let query = ConjunctiveQuery::chain(8);
    let db = matching_database_for_query(&query, 700, 31);
    let oracle = evaluate_sequential(&query, &db);
    let p = 16;
    let one_round = run_hypercube(&query, &db, p, 3);
    let bushy2 = execute_plan(&bushy_chain_plan(8, 2), &query, &db, p, 3);
    let bushy4 = execute_plan(&bushy_chain_plan(8, 4), &query, &db, p, 3);
    let left = execute_plan(&left_deep_plan(&query), &query, &db, p, 3);
    for (name, out) in [
        ("one-round", &one_round.output),
        ("bushy-2", &bushy2.output),
        ("bushy-4", &bushy4.output),
        ("left-deep", &left.output),
    ] {
        assert_same_answer(out, &oracle, name);
    }
    assert_eq!(bushy2.metrics.num_rounds(), 3);
    assert_eq!(bushy4.metrics.num_rounds(), 2);
    assert_eq!(left.metrics.num_rounds(), 7);
}

#[test]
fn star_of_paths_two_round_plan_is_correct() {
    let query = ConjunctiveQuery::star_of_paths(3);
    let db = matching_database_for_query(&query, 500, 77);
    let oracle = evaluate_sequential(&query, &db);
    let run = execute_plan(&star_of_paths_plan(3), &query, &db, 12, 9);
    assert_same_answer(&run.output, &oracle, "SP3 plan");
    assert_eq!(run.metrics.num_rounds(), 2);
}

#[test]
fn skew_aware_algorithms_agree_with_oracle_end_to_end() {
    // Star query with a strong heavy hitter. (The heavy hitter's residual
    // answer is a Cartesian product, so its multiplicity is kept moderate to
    // bound the output size.)
    let query = ConjunctiveQuery::star(3);
    let db = skewed_star_database(3, 900, 60, 3);
    let oracle = evaluate_sequential(&query, &db);
    let aware = run_star_skew_aware(&query, &db, 16, 5);
    assert_same_answer(&aware.output, &oracle, "skew-aware star");

    // Triangle with a hub.
    let db = hub_triangle_database(900, 450, 3);
    let triangle = ConjunctiveQuery::triangle();
    let oracle = evaluate_sequential(&triangle, &db);
    let aware = run_triangle_skew_aware(&db, 27, 5);
    assert_same_answer(&aware.output, &oracle, "skew-aware triangle");
}

#[test]
fn replication_rate_accounting_is_consistent() {
    // Total bits received / input bits must equal the replication rate, and
    // for the triangle HC with shares (c, c, c) each tuple is sent to c
    // servers, so the replication rate is ~c.
    let query = ConjunctiveQuery::triangle();
    let db = matching_database_for_query(&query, 2_000, 11);
    let run = run_hypercube(&query, &db, 64, 13);
    let c = *run.shares.values().max().expect("shares") as f64;
    let r = run.metrics.replication_rate();
    assert!(r <= c + 0.01, "replication {r} exceeds share {c}");
    assert!(r >= c * 0.9, "replication {r} far below share {c}");
}

#[test]
fn output_is_empty_when_one_relation_is_empty() {
    let query = ConjunctiveQuery::triangle();
    let mut db = matching_database_for_query(&query, 300, 21);
    db.insert(Relation::empty(pq_relation::Schema::from_strs(
        "S2",
        &["c0", "c1"],
    )));
    let run = run_hypercube(&query, &db, 8, 3);
    assert!(run.output.is_empty());
}
