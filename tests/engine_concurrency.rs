//! Concurrency contract of the engine façade: many sessions answering
//! queries on real threads against one shared `Engine` (one snapshot, one
//! plan cache) must agree with the sequential oracle, observe each other's
//! cached plans, and never be disturbed — let alone poisoned — by a writer
//! installing new snapshots mid-run.

use pq_engine::{parse_query, plan_query_on, run_plan, Engine};
use pq_query::evaluate_sequential;
use pq_relation::{Database, Relation, Schema, Tuple};
use std::sync::atomic::{AtomicUsize, Ordering};

/// R → S → T chain fragments: R(i, i+1), S(i+1, i+2), T(i+2, i+3).
fn chain_database(m: u64) -> Database {
    let mut db = Database::new(1 << 20);
    for (name, offset) in [("R", 0), ("S", 1), ("T", 2)] {
        db.insert(Relation::from_rows(
            Schema::from_strs(name, &["a", "b"]),
            (0..m).map(|i| vec![i + offset, i + offset + 1]).collect(),
        ));
    }
    db
}

#[test]
fn concurrent_sessions_equal_the_oracle_and_share_one_plan_cache() {
    let db = chain_database(60);
    let engine = Engine::new(db.clone(), 8);
    // Four distinct texts, three distinct rename-invariant signatures (the
    // second is an alpha-renaming of the first).
    let queries = [
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "P(u, v, w) :- R(u, v), S(v, w)",
        "Q(x, y, z) :- S(x, y), T(y, z)",
        "Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)",
    ];
    let distinct_signatures: u64 = 3;
    let oracles: Vec<_> = queries
        .iter()
        .map(|text| {
            let parsed = parse_query(text).expect("parses");
            evaluate_sequential(&parsed.query, &db).canonicalized().to_tuples()
        })
        .collect();

    // Warm each signature once, sequentially: exactly one miss per
    // signature, so every one of the N·M threaded lookups below must hit.
    let warmer = engine.session();
    for text in &queries {
        warmer.run(text).expect("warm-up runs");
    }
    assert_eq!(engine.cache_stats().misses, distinct_signatures);
    let warmup_hits = engine.cache_stats().hits;

    const THREADS: usize = 4;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let session = engine.session();
            let oracles = &oracles;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    for (text, oracle) in queries.iter().zip(oracles) {
                        let run = session.run(text).expect("concurrent run");
                        assert_eq!(
                            run.outcome.output.canonicalized().to_tuples(),
                            &oracle[..],
                            "thread answer diverged from the oracle on {text}"
                        );
                    }
                }
            });
        }
    });

    let stats = engine.cache_stats();
    let threaded_lookups = (THREADS * ROUNDS * queries.len()) as u64;
    assert_eq!(
        stats.hits - warmup_hits,
        threaded_lookups,
        "every threaded lookup must hit the shared cache"
    );
    assert!(
        stats.hits >= threaded_lookups - distinct_signatures,
        "N·M − distinct signatures is the contract's floor"
    );
    assert_eq!(stats.misses, distinct_signatures, "no extra planning happened");
}

#[test]
fn writer_installing_snapshots_mid_run_never_panics_or_poisons_readers() {
    // Each update appends one fresh R(x, y), S(y, z) pair, extending the
    // two-atom chain answer by exactly one row — so every reader must see
    // a *consistent* snapshot: between 40 and 40 + UPDATES rows, never a
    // torn state where only half an update is visible.
    const BASE_ROWS: usize = 40;
    const UPDATES: usize = 6;
    let engine = Engine::new(chain_database(BASE_ROWS as u64), 8);
    let text = "Q(x, y, z) :- R(x, y), S(y, z)";
    let runs_done = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let session = engine.session();
            let runs_done = &runs_done;
            scope.spawn(move || {
                for _ in 0..8 {
                    let run = session.run(text).expect("reader run survives updates");
                    let rows = run.outcome.output.len();
                    assert!(
                        (BASE_ROWS..=BASE_ROWS + UPDATES).contains(&rows),
                        "inconsistent snapshot: {rows} rows"
                    );
                    runs_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let writer = engine.clone();
        scope.spawn(move || {
            for k in 0..UPDATES as u64 {
                writer.update(|db| {
                    db.relation_mut("R").unwrap().push(Tuple::from([10_000 + k, 20_000 + k]));
                    db.relation_mut("S").unwrap().push(Tuple::from([20_000 + k, 30_000 + k]));
                });
            }
        });
    });

    assert_eq!(runs_done.load(Ordering::Relaxed), 3 * 8);
    // After the dust settles every session sees all updates.
    let settled = engine.session().run(text).expect("runs");
    assert_eq!(settled.outcome.output.len(), BASE_ROWS + UPDATES);
}

#[test]
fn old_snapshot_arc_still_answers_after_a_copy_on_write_update() {
    let engine = Engine::new(chain_database(25), 8);
    let parsed = parse_query("Q(x, y, z) :- R(x, y), S(y, z)").expect("parses");

    // An "in-flight query": snapshot and plan fetched before the update…
    let old_snapshot = engine.snapshot();
    let plan = plan_query_on(&parsed, &old_snapshot, 8).expect("plans");

    let new_snapshot = engine.update(|db| {
        for k in 0..5u64 {
            db.relation_mut("R").unwrap().push(Tuple::from([50_000 + k, 60_000 + k]));
            db.relation_mut("S").unwrap().push(Tuple::from([60_000 + k, 70_000 + k]));
        }
    });

    // …finishes on the old snapshot with the old answer (copy-on-write),
    // while new sessions see the new data.
    let old_run = run_plan(&plan, &old_snapshot, 7);
    assert_eq!(old_run.output.len(), 25);
    assert_eq!(new_snapshot.database().expect_relation("R").len(), 30);
    let fresh = engine.session().run("Q(x, y, z) :- R(x, y), S(y, z)").expect("runs");
    assert_eq!(fresh.outcome.output.len(), 30);
}

#[test]
fn one_prepared_query_can_be_shared_across_threads() {
    let engine = Engine::new(chain_database(30), 8);
    let prepared = engine
        .session()
        .prepare("Q(x, y, z) :- R(x, y), S(y, z)")
        .expect("prepares");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let prepared = &prepared;
            scope.spawn(move || {
                for _ in 0..3 {
                    let run = prepared.run().expect("prepared run");
                    assert!(run.cache_hit, "steady state reuses the memoized plan");
                    assert_eq!(run.outcome.output.len(), 30);
                }
            });
        }
    });
}

#[test]
fn concurrent_updates_are_serialised_and_none_is_lost() {
    let engine = Engine::new(chain_database(10), 8);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let engine = engine.clone();
            scope.spawn(move || {
                for k in 0..5u64 {
                    engine.update(|db| {
                        db.relation_mut("T")
                            .unwrap()
                            .push(Tuple::from([1_000 * (t + 1) + k, 1]));
                    });
                }
            });
        }
    });
    assert_eq!(
        engine.snapshot().database().expect_relation("T").len(),
        10 + 4 * 5,
        "copy-on-write updates from racing writers must all land"
    );
}
