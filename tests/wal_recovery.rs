//! Crash-point harness for the WAL + recovery path.
//!
//! Durability's contract is a **prefix** guarantee: whatever byte the crash
//! lands on, recovery yields the base state plus some prefix of the applied
//! deltas — never a torn delta, never a reordering, never an invented row.
//! These tests enforce that contract the brute-force way:
//!
//! * cut the log at **every byte offset** and reopen, checking each
//!   recovered state against an in-memory oracle of cumulative states;
//! * crash between `CheckpointStart` and `CheckpointEnd` (with and without
//!   the snapshot file having landed) and check nothing is lost;
//! * delete or corrupt the **newest** checkpoint file and check recovery
//!   falls back to the previous one plus the retained log;
//! * property-test random delta workloads against the oracle at random cut
//!   points.

use pq_engine::{open_durable, Delta, DurabilityOptions};
use pq_relation::{Database, Relation, Schema, Value, ValueDictionary};
use pq_wal::{recover, SyncPolicy, Wal, WalOptions, WalRecord};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pq-wal-crash-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn base() -> (Database, ValueDictionary) {
    let mut database = Database::new(1 << 12);
    database.insert(Relation::from_rows(
        Schema::from_strs("E", &["x", "y"]),
        vec![vec![1, 2]],
    ));
    (database, ValueDictionary::new())
}

/// No auto-checkpointing, no fsync stalls: the log holds exactly the
/// initial checkpoint markers plus one `DeltaApplied` per apply.
fn options() -> DurabilityOptions {
    DurabilityOptions { sync: SyncPolicy::Never, checkpoint_every: 0 }
}

/// The WAL segment files in `dir`, sorted by starting LSN (file name order).
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segments.sort();
    segments
}

/// The checkpoint files in `dir`, sorted by covered LSN.
fn checkpoints(dir: &Path) -> Vec<PathBuf> {
    let mut checkpoints: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".ckpt"))
        })
        .collect();
    checkpoints.sort();
    checkpoints
}

/// Copy the flat WAL directory `from` into a fresh scratch directory.
fn copy_dir(from: &Path, tag: &str) -> TempDir {
    let scratch = TempDir::new(tag);
    for entry in fs::read_dir(from).unwrap() {
        let path = entry.unwrap().path();
        fs::copy(&path, scratch.0.join(path.file_name().unwrap())).unwrap();
    }
    scratch
}

/// The rows of relation `E` in storage (insertion) order.
fn rows_of(database: &Database) -> Vec<Value> {
    database.expect_relation("E").values().to_vec()
}

/// Apply `deltas` (each a flat `[x, y, x, y, …]` buffer) through a durable
/// engine in `dir`, returning the oracle: the flat row buffer of `E` after
/// the base and after each delta.
fn run_workload(dir: &Path, deltas: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let opened = open_durable(dir, options(), 4, Some(base())).unwrap();
    let mut oracle = vec![rows_of(opened.engine.snapshot().database())];
    for flat in deltas {
        let rows: Vec<Vec<Value>> = flat.chunks(2).map(<[_]>::to_vec).collect();
        opened.engine.apply(Delta::insert("E", rows)).unwrap();
        oracle.push(rows_of(opened.engine.snapshot().database()));
    }
    oracle
}

/// Reopen a copy of `dir` with its last segment truncated to `cut` bytes
/// and return the recovered flat row buffer of `E`.
fn recover_cut_at(dir: &Path, cut: u64, tag: &str) -> Vec<Value> {
    let scratch = copy_dir(dir, tag);
    let segment = segments(&scratch.0).pop().expect("a segment exists");
    let file = fs::OpenOptions::new().write(true).open(&segment).unwrap();
    file.set_len(cut).unwrap();
    drop(file);
    let reopened = open_durable(&scratch.0, options(), 4, None).unwrap();
    rows_of(reopened.engine.snapshot().database())
}

/// Assert `recovered` is the state after some whole number of deltas, and
/// return that number.
fn assert_is_prefix(oracle: &[Vec<Value>], recovered: &[Value]) -> usize {
    for (k, state) in oracle.iter().enumerate() {
        if state == recovered {
            return k;
        }
    }
    panic!(
        "recovered {} value(s) match no oracle state (torn delta?): {recovered:?}",
        recovered.len()
    );
}

#[test]
fn cutting_the_log_at_every_byte_recovers_a_prefix() {
    let dir = TempDir::new("sweep");
    let deltas: Vec<Vec<Value>> = (0..6u64)
        .map(|i| (0..=i).flat_map(|j| [100 + 10 * i + j, 200 + i]).collect())
        .collect();
    let oracle = run_workload(&dir.0, &deltas);

    let segment = segments(&dir.0).pop().expect("a segment exists");
    let len = fs::metadata(&segment).unwrap().len();
    assert!(len > 0, "the log holds the deltas");

    let mut last_k = 0usize;
    for cut in 0..=len {
        let recovered = recover_cut_at(&dir.0, cut, "sweep-cut");
        let k = assert_is_prefix(&oracle, &recovered);
        // Longer surviving logs never recover less.
        assert!(k >= last_k, "cut at {cut}: prefix shrank from {last_k} to {k}");
        last_k = k;
    }
    assert_eq!(last_k, deltas.len(), "an uncut log recovers everything");
}

#[test]
fn crash_between_checkpoint_start_and_end_loses_nothing() {
    // A crash right after the CheckpointStart record: no snapshot file, no
    // CheckpointEnd. Recovery must behave as if the checkpoint never began.
    let dir = TempDir::new("midckpt");
    let (database, dictionary) = base();
    {
        let wal = Wal::open(&dir.0, WalOptions::with_sync(SyncPolicy::Never)).unwrap();
        for i in 0..3u64 {
            wal.append(&WalRecord::DeltaApplied {
                inserts: vec![pq_wal::RelationInserts {
                    relation: "E".into(),
                    arity: 2,
                    rows: 1,
                    values: vec![10 + i, 20 + i],
                }],
            })
            .unwrap();
        }
        wal.append(&WalRecord::CheckpointStart).unwrap();
        // Crash: drop without writing the snapshot file or CheckpointEnd.
    }
    let recovery = recover(&dir.0).unwrap();
    assert!(recovery.checkpoint.is_none());
    assert_eq!(recovery.deltas.len(), 3, "every delta before the orphan Start survives");

    // A crash after the snapshot file landed but before CheckpointEnd: the
    // checkpoint is already usable, and later deltas replay on top of it.
    let start_lsn = 4;
    pq_wal::write_checkpoint_file(&dir.0, start_lsn, &database, &dictionary).unwrap();
    {
        let wal = Wal::open(&dir.0, WalOptions::with_sync(SyncPolicy::Never)).unwrap();
        wal.append(&WalRecord::SnapshotWritten { checkpoint_lsn: start_lsn }).unwrap();
        wal.append(&WalRecord::DeltaApplied {
            inserts: vec![pq_wal::RelationInserts {
                relation: "E".into(),
                arity: 2,
                rows: 1,
                values: vec![77, 88],
            }],
        })
        .unwrap();
        // Crash again: no CheckpointEnd, ever.
    }
    let recovery = recover(&dir.0).unwrap();
    let checkpoint = recovery.checkpoint.as_ref().expect("snapshot file is usable");
    assert_eq!(checkpoint.covered_lsn, start_lsn);
    assert_eq!(recovery.deltas.len(), 1, "only the post-snapshot delta replays");
    assert_eq!(recovery.deltas[0].inserts[0].values, [77, 88]);
}

#[test]
fn deleting_the_newest_checkpoint_falls_back_to_the_previous_one() {
    let dir = TempDir::new("delckpt");
    let opened = open_durable(&dir.0, options(), 4, Some(base())).unwrap();
    for i in 0..3u64 {
        opened.engine.apply(Delta::insert("E", vec![vec![30 + i, 40 + i]])).unwrap();
    }
    opened.engine.checkpoint().unwrap();
    opened.engine.apply(Delta::insert("E", vec![vec![50, 60]])).unwrap();
    let expected = rows_of(opened.engine.snapshot().database());
    drop(opened);

    let newest = checkpoints(&dir.0).pop().expect("two checkpoints exist");
    fs::remove_file(&newest).unwrap();
    let reopened = open_durable(&dir.0, options(), 4, None).unwrap();
    assert_eq!(
        rows_of(reopened.engine.snapshot().database()),
        expected,
        "the older checkpoint plus the retained log rebuilds the full state"
    );
}

#[test]
fn corrupt_newest_checkpoint_is_skipped_and_counted() {
    let dir = TempDir::new("badckpt");
    let opened = open_durable(&dir.0, options(), 4, Some(base())).unwrap();
    opened.engine.apply(Delta::insert("E", vec![vec![5, 6]])).unwrap();
    opened.engine.checkpoint().unwrap();
    let expected = rows_of(opened.engine.snapshot().database());
    drop(opened);

    let newest = checkpoints(&dir.0).pop().unwrap();
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&newest, bytes).unwrap();

    let reopened = open_durable(&dir.0, options(), 4, None).unwrap();
    assert_eq!(rows_of(reopened.engine.snapshot().database()), expected);
    assert_eq!(reopened.checkpoints_discarded, 1, "the mangled file was counted");
}

mod oracle_property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Random workloads, random crash points: recovery is always the
        // base plus a whole-delta prefix, and an uncut log loses nothing.
        #[test]
        fn random_cut_recovers_a_whole_delta_prefix(
            row_counts in proptest::collection::vec(1usize..4, 1..7),
            raw_values in proptest::collection::vec(1u64..4000, 48..49),
            cut_frac in 0u64..1000,
        ) {
            let dir = TempDir::new("prop");
            let mut draw = raw_values.into_iter().cycle();
            let deltas: Vec<Vec<Value>> = row_counts
                .iter()
                .map(|rows| (0..rows * 2).map(|_| draw.next().unwrap()).collect())
                .collect();
            let oracle = run_workload(&dir.0, &deltas);

            let segment = segments(&dir.0).pop().expect("a segment exists");
            let len = fs::metadata(&segment).unwrap().len();
            let cut = (len * cut_frac) / 1000;
            let recovered = recover_cut_at(&dir.0, cut, "prop-cut");
            let k = assert_is_prefix(&oracle, &recovered);
            prop_assert!(k <= deltas.len());

            let full = recover_cut_at(&dir.0, len, "prop-full");
            prop_assert_eq!(assert_is_prefix(&oracle, &full), deltas.len());
        }
    }
}
