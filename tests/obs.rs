//! Integration tests for the observability layer (`pq-obs`) and its wiring
//! through the engine:
//!
//! * the log-bucketed histogram's quantiles against an exact sort oracle,
//!   over random inputs (the ≤ 25% + 1 relative-error guarantee);
//! * concurrent counter/histogram updates and per-thread merge are
//!   lossless;
//! * the Prometheus/JSON expositions of a registry fed through the real
//!   engine, and the engine-level metric inventory: query counts by
//!   outcome, cache hit/miss/invalidated, delta counters, per-phase
//!   trace spans — with and without instrumentation enabled;
//! * the structured logger's level gate through a captured buffer sink.

use pq_engine::{Delta, Engine, Phase};
use pq_obs::{json_text, prometheus_text, LogHistogram, LogLevel, Logger, MetricsRegistry};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn engine() -> Engine {
    let mut db = pq_relation::Database::new(1 << 12);
    db.insert(pq_relation::Relation::from_rows(
        pq_relation::Schema::from_strs("R", &["a", "b"]),
        (0..50).map(|i| vec![i, i + 1]).collect(),
    ));
    db.insert(pq_relation::Relation::from_rows(
        pq_relation::Schema::from_strs("S", &["a", "b"]),
        (0..50).map(|i| vec![i + 1, i + 2]).collect(),
    ));
    Engine::new(db, 8)
}

const QUERY: &str = "Q(x, y, z) :- R(x, y), S(y, z)";

/// The exact quantile the histogram approximates: the value of rank
/// `ceil(q * n)` (1-based) in sorted order.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    // For any input set, every reported quantile is an upper bound on the
    // exact quantile and overshoots by at most a quarter of it (the
    // sub-bucket width), plus one for rounding at tiny values.
    #[test]
    fn histogram_quantiles_bound_the_sort_oracle(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..200),
        percent in 1u32..100,
    ) {
        let q = f64::from(percent) / 100.0;
        let h = LogHistogram::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let estimate = h.quantile(q);
        prop_assert!(estimate >= exact, "estimate {estimate} below exact {exact}");
        prop_assert!(
            estimate <= exact + exact / 4 + 1,
            "estimate {estimate} overshoots exact {exact} by more than 25% + 1"
        );
    }
}

#[test]
fn concurrent_updates_are_lossless_and_merge_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = MetricsRegistry::new();
    let counter = registry.counter("t_total", &[], "");
    let shared = registry.histogram("t_micros", &[], "");
    // Each thread also fills a private histogram; merging those must equal
    // the shared histogram that saw every observation directly.
    let locals: Vec<Arc<LogHistogram>> = (0..THREADS)
        .map(|_| Arc::new(LogHistogram::new()))
        .collect();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let shared = Arc::clone(&shared);
            let local = Arc::clone(&locals[t as usize]);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let v = t * PER_THREAD + i + 1;
                    counter.inc();
                    shared.observe(v);
                    local.observe(v);
                }
            });
        }
    });
    let total = THREADS * PER_THREAD;
    assert_eq!(counter.get(), total, "no counter increment lost");
    assert_eq!(shared.count(), total, "no observation lost");
    assert_eq!(shared.sum(), total * (total + 1) / 2, "sums add up exactly");
    let merged = LogHistogram::new();
    for local in &locals {
        merged.merge_from(local);
    }
    assert_eq!(merged.count(), shared.count());
    assert_eq!(merged.sum(), shared.sum());
    for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
        assert_eq!(
            merged.quantile(q),
            shared.quantile(q),
            "bucketwise merge is lossless, so quantiles agree at q={q}"
        );
    }
}

#[test]
fn engine_runs_land_in_the_registry_and_the_expositions() {
    let e = engine();
    let session = e.session();
    session.run(QUERY).unwrap();
    session.run(QUERY).unwrap();
    assert!(session.run("nonsense ):").is_err());
    let registry = e.metrics();
    assert_eq!(registry.counter_value("pq_queries_total", &[("status", "ok")]), 2);
    assert_eq!(
        registry.counter_value("pq_queries_total", &[("status", "error")]),
        1
    );
    assert_eq!(registry.counter_value("pq_plan_cache_hits_total", &[]), 1);
    assert_eq!(registry.counter_value("pq_plan_cache_misses_total", &[]), 1);
    assert_eq!(registry.counter_value("pq_query_rows_total", &[]), 100);

    let snapshot = registry.snapshot();
    let text = prometheus_text(&snapshot);
    assert!(text.contains("pq_queries_total{status=\"ok\"} 2"));
    assert!(text.contains("# TYPE pq_queries_total counter"));
    assert!(text.contains("pq_phase_micros_count{phase=\"execute\"} 2"));
    assert!(text.contains("# TYPE pq_query_latency_micros summary"));
    let json = json_text(&snapshot);
    assert!(json.starts_with("{\"counters\":["));
    assert!(json.contains("\"name\":\"pq_queries_total\""));
    assert!(json.contains("\"status\":\"ok\""));
}

#[test]
fn traced_runs_carry_the_lifecycle_phases_and_outcome_labels() {
    let e = engine();
    let session = e.session();
    let (run, trace) = session.run_traced(QUERY).unwrap();
    for phase in [Phase::Parse, Phase::CacheLookup, Phase::Plan, Phase::Execute] {
        assert!(
            trace.phase_duration(phase).is_some(),
            "phase {} missing from the trace",
            phase.name()
        );
    }
    assert_eq!(trace.strategy.as_deref(), Some(run.plan.strategy.name()));
    assert_eq!(trace.cache_hit, Some(false));
    assert_eq!(trace.rows_out, Some(run.outcome.output.len() as u64));
    assert!(trace.total() >= trace.phase_duration(Phase::Execute).unwrap());
    // A warm re-run skips planning: the plan phase is absent, the cache
    // lookup phase is not.
    let (_, warm) = session.run_traced(QUERY).unwrap();
    assert_eq!(warm.cache_hit, Some(true));
    assert!(warm.phase_duration(Phase::Plan).is_none());
    assert!(warm.phase_duration(Phase::CacheLookup).is_some());
}

#[test]
fn deltas_and_invalidation_move_the_write_path_counters() {
    let e = engine();
    let session = e.session();
    session.run(QUERY).unwrap();
    e.apply(Delta::insert("R", vec![vec![500, 501], vec![501, 502]]))
        .unwrap();
    let registry = e.metrics();
    assert_eq!(registry.counter_value("pq_deltas_applied_total", &[]), 1);
    assert_eq!(registry.counter_value("pq_rows_inserted_total", &[]), 2);
    assert_eq!(registry.counter_value("pq_snapshot_updates_total", &[]), 1);
    assert_eq!(
        registry.counter_value("pq_plan_cache_invalidated_total", &[]),
        1,
        "the cached plan reads R, so the delta invalidates it"
    );
}

#[test]
fn disabling_metrics_stops_recording_but_not_serving() {
    let e = engine().with_metrics_enabled(false);
    let session = e.session();
    let run = session.run(QUERY).unwrap();
    assert_eq!(run.outcome.output.len(), 50, "answers are unaffected");
    let registry = e.metrics();
    assert_eq!(registry.counter_value("pq_queries_total", &[("status", "ok")]), 0);
    assert_eq!(registry.counter_value("pq_plan_cache_misses_total", &[]), 0);
}

#[test]
fn prepared_runs_count_like_session_runs() {
    let e = engine();
    let prepared = e.session().prepare(QUERY).unwrap();
    for _ in 0..3 {
        prepared.run().unwrap();
    }
    let registry = e.metrics();
    assert_eq!(registry.counter_value("pq_queries_total", &[("status", "ok")]), 3);
    assert_eq!(registry.counter_value("pq_query_rows_total", &[]), 150);
}

#[test]
fn logger_respects_the_level_gate_and_structures_fields() {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    let logger = Logger::new("test", LogLevel::Info).with_buffer(Arc::clone(&buffer));
    logger.debug("invisible").emit();
    logger.info("visible").kv("rows", 42).kv("strategy", "one round").emit();
    logger.error("bad").emit();
    let lines = buffer.lock().unwrap().clone();
    assert_eq!(lines.len(), 2, "debug is below the info gate");
    assert!(lines[0].contains(" INFO test visible rows=42 strategy=\"one round\""));
    assert!(lines[1].contains("ERROR test bad"));

    let quiet = Logger::new("test", LogLevel::Quiet).with_buffer(Arc::clone(&buffer));
    quiet.error("suppressed").emit();
    assert_eq!(buffer.lock().unwrap().len(), 2, "quiet silences even errors");
}
