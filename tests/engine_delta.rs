//! The typed delta mutation path, end to end.
//!
//! Three contracts, each against an oracle:
//!
//! * **incremental statistics** — folding insert-only deltas into a
//!   [`DatabaseStatistics`] catalogue must be *indistinguishable* (full
//!   `PartialEq`, fingerprints included) from recomputing the catalogue
//!   from the post-insert database;
//! * **per-relation copy-on-write** — `Engine::apply` of a delta touching
//!   one relation must share the other relations' row buffers *and*
//!   statistics with the previous snapshot by pointer (`Arc::ptr_eq`), i.e.
//!   provably not recompute them;
//! * **snapshot isolation** — readers holding a pre-delta snapshot keep
//!   answering from the old data while sessions starting after the delta
//!   see the new rows.

use pq_engine::{parse_query, plan_query_on, run_plan, Delta, Engine};
use pq_relation::{Database, DatabaseStatistics, Relation, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// A tiny deterministic generator (xorshift64*) so random databases and
/// deltas derive from one proptest-chosen seed.
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, span: u64) -> u64 {
        self.next() % span.max(1)
    }
}

/// 2–4 relations, arities 0..=3 over a small attribute pool and a small
/// value domain (plenty of duplicate values, so degree maps and heavy
/// hitters are exercised, not just cardinalities).
fn random_database(rng: &mut Xs) -> Database {
    const POOL: [&str; 4] = ["a", "b", "c", "d"];
    let mut db = Database::new(64);
    for i in 0..2 + rng.below(3) {
        let arity = rng.below(4) as usize;
        let mut attrs: Vec<String> = Vec::new();
        let mut start = rng.below(4) as usize;
        while attrs.len() < arity {
            attrs.push(POOL[start % POOL.len()].to_string());
            start += 1;
        }
        let rows = rng.below(20) as usize;
        let mut rel = Relation::empty(Schema::new(format!("R{i}"), attrs));
        let mut row = Vec::with_capacity(arity);
        for _ in 0..rows {
            row.clear();
            row.extend((0..arity).map(|_| rng.below(8)));
            rel.push_row(&row);
        }
        db.insert(rel);
    }
    db
}

/// Random insert-only rows for a randomly chosen subset of `db`'s
/// relations (possibly none, possibly empty row lists).
fn random_rows(rng: &mut Xs, db: &Database) -> Vec<(String, Vec<Vec<Value>>)> {
    db.relations()
        .map(|rel| {
            let k = rng.below(4) as usize;
            let rows: Vec<Vec<Value>> = (0..k)
                .map(|_| (0..rel.arity()).map(|_| rng.below(8)).collect())
                .collect();
            (rel.name().to_string(), rows)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The statistics-layer oracle: consecutive `apply_inserts` batches
    // leave the catalogue equal — fingerprint included — to a fresh
    // recompute from the mutated database.
    #[test]
    fn stats_after_apply_inserts_equal_recompute_from_scratch(seed in 0u64..1_000_000) {
        let mut rng = Xs(seed);
        let mut db = random_database(&mut rng);
        let mut stats = DatabaseStatistics::compute(&db);
        for _ in 0..1 + rng.below(3) {
            for (name, rows) in random_rows(&mut rng, &db) {
                if rows.is_empty() {
                    continue;
                }
                let schema = db.relation(&name).unwrap().schema().clone();
                stats.apply_inserts(&schema, rows.iter().map(Vec::as_slice));
                let rel = db.relation_mut(&name).unwrap();
                for row in &rows {
                    rel.push_row(row);
                }
            }
        }
        let recomputed = DatabaseStatistics::compute(&db);
        prop_assert_eq!(&stats, &recomputed);
        prop_assert_eq!(stats.fingerprint, recomputed.fingerprint);
    }

    // The engine-level oracle: after any chain of `Engine::apply` calls,
    // the live snapshot's catalogue equals a from-scratch recompute of its
    // database.
    #[test]
    fn engine_apply_keeps_snapshot_statistics_exact(seed in 0u64..1_000_000) {
        let mut rng = Xs(seed);
        let db = random_database(&mut rng);
        let engine = Engine::new(db, 4);
        for _ in 0..1 + rng.below(3) {
            let rows = random_rows(&mut rng, engine.snapshot().database());
            let mut delta = Delta::new();
            for (name, rows) in rows {
                delta = delta.and_insert(name, rows);
            }
            let total_before = engine.snapshot().database().total_tuples();
            let inserted = delta.num_rows();
            let next = engine.apply(delta).expect("valid delta");
            prop_assert_eq!(next.database().total_tuples(), total_before + inserted);
        }
        let snapshot = engine.snapshot();
        let recomputed = DatabaseStatistics::compute(snapshot.database());
        prop_assert_eq!(snapshot.statistics(), &recomputed);
        prop_assert_eq!(snapshot.fingerprint(), recomputed.fingerprint);
    }
}

/// R → S → T chain on 50 rows per relation.
fn chain_engine() -> Engine {
    let mut db = Database::new(1 << 10);
    for (name, offset) in [("R", 0u64), ("S", 1), ("T", 2)] {
        db.insert(Relation::from_rows(
            Schema::from_strs(name, &["a", "b"]),
            (0..50).map(|i| vec![i + offset, i + offset + 1]).collect(),
        ));
    }
    Engine::new(db, 8)
}

/// The acceptance-criterion assertion: a single-row insert into one
/// relation of a multi-relation database must not recompute — or even
/// copy — the untouched relations' rows or statistics. `Arc::ptr_eq`
/// proves sharing, which is strictly stronger than equality.
#[test]
fn apply_shares_untouched_relations_and_their_statistics_by_pointer() {
    let engine = chain_engine();
    let before = engine.snapshot();
    let after = engine.apply(Delta::insert("R", vec![vec![900, 901]])).unwrap();

    for untouched in ["S", "T"] {
        assert!(
            Arc::ptr_eq(
                before.database().relation_arc(untouched).unwrap(),
                after.database().relation_arc(untouched).unwrap()
            ),
            "{untouched}'s rows must be shared, not copied"
        );
        assert!(
            Arc::ptr_eq(
                &before.statistics().relations[untouched],
                &after.statistics().relations[untouched]
            ),
            "{untouched}'s statistics must be shared, not recomputed"
        );
    }
    assert!(
        !Arc::ptr_eq(
            before.database().relation_arc("R").unwrap(),
            after.database().relation_arc("R").unwrap()
        ),
        "the touched relation is copied-on-write"
    );
    assert!(!Arc::ptr_eq(
        &before.statistics().relations["R"],
        &after.statistics().relations["R"]
    ));
    // And the old snapshot is genuinely untouched.
    assert_eq!(before.database().expect_relation("R").len(), 50);
    assert_eq!(after.database().expect_relation("R").len(), 51);
    assert_eq!(
        after.statistics().relations["R"].cardinality,
        51,
        "touched statistics were maintained"
    );
}

/// Readers holding a pre-delta snapshot keep answering from the old data;
/// sessions that start after the delta see the new rows. Reader threads
/// racing a writer must only ever observe row counts of some installed
/// snapshot, in monotone order.
#[test]
fn readers_keep_their_snapshot_while_deltas_land() {
    let engine = chain_engine();
    let text = "Q(x, y, z) :- R(x, y), S(y, z)";
    let session = engine.session();
    let baseline = session.run(text).unwrap().outcome.output.len();

    // A reader pins the pre-delta snapshot explicitly.
    let old_snapshot = engine.snapshot();
    // Each delta row R(900+k, 1) joins S(1, 2): one new answer per delta.
    const DELTAS: usize = 5;
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let session = engine.session();
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..10 {
                        seen.push(session.run(text).unwrap().outcome.output.len());
                    }
                    seen
                })
            })
            .collect();
        scope.spawn(|| {
            for k in 0..DELTAS {
                engine
                    .apply(Delta::insert("R", vec![vec![900 + k as Value, 1]]))
                    .unwrap();
            }
        });
        for reader in readers {
            let seen = reader.join().unwrap();
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(seen, sorted, "snapshots only move forward");
            for count in seen {
                assert!(
                    (baseline..=baseline + DELTAS).contains(&count),
                    "count {count} outside any installed snapshot"
                );
            }
        }
    });

    // The pinned pre-delta snapshot still answers with the old data.
    let parsed = parse_query(text).unwrap();
    let plan = plan_query_on(&parsed, &old_snapshot, 8).unwrap();
    let old_answer = run_plan(&plan, &old_snapshot, 7);
    assert_eq!(old_answer.output.len(), baseline, "old snapshot intact");
    // A fresh session sees every delta.
    assert_eq!(
        engine.session().run(text).unwrap().outcome.output.len(),
        baseline + DELTAS
    );
}

/// Nullary relations ride the same path (the flat storage keeps an
/// explicit row count for them).
#[test]
fn deltas_into_nullary_relations_work() {
    let mut db = Database::new(16);
    db.insert(Relation::empty(Schema::new("N", Vec::<String>::new())));
    db.insert(Relation::from_rows(
        Schema::from_strs("R", &["x"]),
        vec![vec![1]],
    ));
    let engine = Engine::new(db, 4);
    let next = engine
        .apply(Delta::insert("N", vec![vec![], vec![]]))
        .unwrap();
    assert_eq!(next.database().expect_relation("N").len(), 2);
    assert_eq!(next.statistics().relations["N"].cardinality, 2);
    assert_eq!(next.statistics().relations["N"].size_bits, 0);
    assert_eq!(
        next.statistics(),
        &DatabaseStatistics::compute(next.database())
    );
}

/// The cumulative `invalidated` counter sums evictions across both
/// mutation paths, and plans over untouched relations survive arbitrary
/// interleavings of `apply` and `update`.
#[test]
fn invalidated_counter_accumulates_across_apply_and_update() {
    let engine = chain_engine();
    let session = engine.session();
    let q_rs = "Q(x, y, z) :- R(x, y), S(y, z)";
    let q_st = "Q(x, y, z) :- S(x, y), T(y, z)";
    session.run(q_rs).unwrap();
    session.run(q_st).unwrap();

    engine.apply(Delta::insert("R", vec![vec![901, 1]])).unwrap();
    assert_eq!(engine.cache_stats().invalidated, 1, "q_rs evicted");
    session.run(q_rs).unwrap(); // re-cached under the new fingerprint
    engine.update(|db| {
        db.relation_mut("T").unwrap().push(pq_relation::Tuple::from([902, 903]));
    });
    assert_eq!(engine.cache_stats().invalidated, 2, "q_st evicted in turn");
    assert!(session.run(q_rs).unwrap().cache_hit, "q_rs survived the T update");
    assert!(!session.run(q_st).unwrap().cache_hit);
}
