//! Integration tests tying the measured behaviour of the algorithms to the
//! paper's bounds: upper = lower for one round (Theorem 3.15), measured
//! loads within a constant factor of the bounds (Theorems 3.4/3.5),
//! per-round loads of multi-round plans (Proposition 5.1), and the
//! rounds-vs-load tradeoff (Section 5).

use pq_bench::{matching_database_for_query, uniform_sizes};
use pq_core::bounds::multiround::{chain_rounds_lower_bound, rounds_upper_bound};
use pq_core::bounds::one_round::{
    load_for_packing, lower_bound_load, space_exponent_lower_bound, upper_bound_load,
};
use pq_core::bounds::replication::replication_rate_lower_bound;
use pq_core::multiround::plan::{bushy_chain_plan, execute_plan};
use pq_core::prelude::*;
use pq_query::packing::{fractional_edge_packing_vertices, vertex_cover_number};

#[test]
fn theorem_3_15_upper_equals_lower_for_many_queries_and_sizes() {
    let queries = vec![
        ConjunctiveQuery::triangle(),
        ConjunctiveQuery::cycle(5),
        ConjunctiveQuery::chain(6),
        ConjunctiveQuery::star(4),
        ConjunctiveQuery::k4(),
        ConjunctiveQuery::b_query(4, 2),
        ConjunctiveQuery::star_of_paths(3),
    ];
    for q in queries {
        // Equal sizes.
        let sizes = uniform_sizes(&q, 1 << 26);
        for p in [8usize, 64, 1024] {
            let lo = lower_bound_load(&q, &sizes, p);
            let hi = upper_bound_load(&q, &sizes, p);
            assert!(
                (lo - hi).abs() / hi < 1e-4,
                "{}: lower {lo} != upper {hi} (p={p})",
                q.name()
            );
        }
        // Wildly unequal sizes.
        let mut sizes = uniform_sizes(&q, 1 << 26);
        let names = q.relation_names();
        sizes.insert(names[0].clone(), 1 << 14);
        if names.len() > 2 {
            sizes.insert(names[1].clone(), 1 << 20);
        }
        for p in [16usize, 256] {
            let lo = lower_bound_load(&q, &sizes, p);
            let hi = upper_bound_load(&q, &sizes, p);
            assert!(
                (lo - hi).abs() / hi < 1e-3,
                "{} unequal: lower {lo} != upper {hi} (p={p})",
                q.name()
            );
        }
    }
}

#[test]
fn measured_hypercube_load_is_sandwiched_by_the_bounds() {
    // Measured load must be at least a constant fraction of L_lower (no
    // algorithm can beat the lower bound except by constant-factor slack in
    // the bit accounting) and at most a constant multiple of L_upper.
    let cases = vec![
        (ConjunctiveQuery::triangle(), 6_000usize),
        (ConjunctiveQuery::chain(4), 6_000),
        (ConjunctiveQuery::star(3), 6_000),
    ];
    for (query, m) in cases {
        let db = matching_database_for_query(&query, m, 7);
        for p in [16usize, 64] {
            let run = run_hypercube(&query, &db, p, 3);
            let lower = lower_bound_load(&query, &db.sizes_bits(), p);
            let measured = run.metrics.max_load() as f64;
            assert!(
                measured < 8.0 * lower,
                "{} p={p}: measured {measured} >> bound {lower}",
                query.name()
            );
            assert!(
                measured > 0.1 * lower,
                "{} p={p}: measured {measured} << bound {lower} (accounting bug?)",
                query.name()
            );
        }
    }
}

#[test]
fn space_exponent_of_measured_runs_respects_the_lower_bound() {
    // For the triangle, eps >= 1 - 1/tau* = 1/3: the measured load cannot be
    // much below M/p^{2/3}.
    let query = ConjunctiveQuery::triangle();
    let db = matching_database_for_query(&query, 8_000, 17);
    let p = 64;
    let run = run_hypercube(&query, &db, p, 19);
    let eps_bound = space_exponent_lower_bound(&query);
    let eps_measured = run.metrics.space_exponent(p).expect("well-defined");
    assert!(
        eps_measured >= eps_bound - 0.15,
        "measured eps {eps_measured} far below the bound {eps_bound}"
    );
}

#[test]
fn every_packing_vertex_gives_a_valid_lower_bound() {
    // L_lower is the max over vertices; every individual vertex must give a
    // load below the measured load (up to constants), per Theorem 3.5.
    let query = ConjunctiveQuery::cycle(4);
    let db = matching_database_for_query(&query, 4_000, 23);
    let p = 64;
    let run = run_hypercube(&query, &db, p, 29);
    let sizes: Vec<f64> = query
        .relation_names()
        .iter()
        .map(|r| db.relation_size_bits(r) as f64)
        .collect();
    for u in fractional_edge_packing_vertices(&query) {
        let bound = load_for_packing(&u, &sizes, p);
        assert!(
            run.metrics.max_load() as f64 > 0.1 * bound,
            "vertex {u:?} bound {bound} above measured load"
        );
    }
}

#[test]
fn replication_rate_bound_is_respected_by_hypercube() {
    let query = ConjunctiveQuery::triangle();
    let db = matching_database_for_query(&query, 6_000, 31);
    for p in [16usize, 64, 256] {
        let run = run_hypercube(&query, &db, p, 37);
        let bound =
            replication_rate_lower_bound(&query, &db.sizes_bits(), run.metrics.max_load() as f64);
        let measured = run.metrics.replication_rate();
        assert!(
            measured >= 0.5 * bound,
            "p={p}: measured replication {measured} below half the bound {bound}"
        );
    }
}

#[test]
fn proposition_5_1_per_round_load_of_bushy_plans() {
    // Every round of the bushy plan stays within a constant factor of
    // M / (p / operators-in-round): the plan achieves load O(M/p^{1-eps}).
    let k = 8;
    let query = ConjunctiveQuery::chain(k);
    let db = matching_database_for_query(&query, 6_000, 41);
    let p = 32;
    let run = execute_plan(&bushy_chain_plan(k, 2), &query, &db, p, 43);
    let m_bits = db.relation_size_bits("S1") as f64;
    let max_operators = k / 2;
    for (i, load) in run.metrics.per_round_max_loads().iter().enumerate() {
        let budget = 6.0 * 2.0 * m_bits / (p / max_operators) as f64;
        assert!(
            (*load as f64) < budget,
            "round {i} load {load} exceeds budget {budget}"
        );
    }
    assert_eq!(run.metrics.num_rounds(), chain_rounds_lower_bound(k, 0.0));
}

#[test]
fn round_bounds_are_consistent_for_many_chain_lengths() {
    for epsilon in [0.0, 0.5, 2.0 / 3.0] {
        for k in 2..=32 {
            let q = ConjunctiveQuery::chain(k);
            let lower = chain_rounds_lower_bound(k, epsilon);
            let upper = rounds_upper_bound(&q, epsilon);
            assert!(lower <= upper, "L_{k} eps={epsilon}: lower {lower} > upper {upper}");
            assert!(upper <= lower + 1, "L_{k} eps={epsilon}: gap larger than 1");
        }
    }
}

#[test]
fn tau_star_closed_forms_for_the_table_2_families() {
    for k in 3..=10 {
        assert!((vertex_cover_number(&ConjunctiveQuery::cycle(k)) - k as f64 / 2.0).abs() < 1e-6);
    }
    for k in 1..=8 {
        assert!((vertex_cover_number(&ConjunctiveQuery::star(k)) - 1.0).abs() < 1e-6);
        assert!(
            (vertex_cover_number(&ConjunctiveQuery::chain(k)) - (k as f64 / 2.0).ceil()).abs()
                < 1e-6
        );
    }
    for (k, m) in [(4usize, 2usize), (5, 2), (6, 3), (6, 2)] {
        assert!(
            (vertex_cover_number(&ConjunctiveQuery::b_query(k, m)) - k as f64 / m as f64).abs()
                < 1e-6
        );
    }
}
