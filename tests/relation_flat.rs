//! Oracle equivalence for the flat-storage relation layer: `natural_join`,
//! `natural_join_all`, `project` and `semijoin`/`antijoin` over the
//! row-major flat buffers must be **set-equal** to naive tuple-at-a-time
//! reference implementations (the pre-refactor semantics) on random
//! databases, plus deterministic edge cases — nullary relations, empty
//! relations, arity 1, and duplicate rows ahead of `dedup`.

use pq_relation::{natural_join, natural_join_all, project, Relation, Schema, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Rows of a relation as an order-insensitive multiset-collapsed set,
/// keyed per attribute name so relations with different column orders
/// compare structurally.
fn row_set(rel: &Relation) -> BTreeSet<BTreeMap<String, Value>> {
    let attrs = rel.schema().attributes();
    rel.iter()
        .map(|row| {
            attrs
                .iter()
                .cloned()
                .zip(row.iter().copied())
                .collect::<BTreeMap<_, _>>()
        })
        .collect()
}

/// Reference natural join: nested loops over owned tuples, no hashing.
fn oracle_join(left: &Relation, right: &Relation) -> BTreeSet<BTreeMap<String, Value>> {
    let lattrs = left.schema().attributes();
    let rattrs = right.schema().attributes();
    let mut out = BTreeSet::new();
    for lrow in left.iter() {
        let lmap: BTreeMap<String, Value> =
            lattrs.iter().cloned().zip(lrow.iter().copied()).collect();
        'rows: for rrow in right.iter() {
            let mut merged = lmap.clone();
            for (a, &v) in rattrs.iter().zip(rrow.iter()) {
                match merged.get(a) {
                    Some(&existing) if existing != v => continue 'rows,
                    _ => {
                        merged.insert(a.clone(), v);
                    }
                }
            }
            out.insert(merged);
        }
    }
    out
}

/// Reference multiway join: left fold of [`oracle_join`] in input order
/// (set semantics makes the order irrelevant).
fn oracle_join_all(relations: &[Relation]) -> BTreeSet<BTreeMap<String, Value>> {
    let Some((first, rest)) = relations.split_first() else {
        return BTreeSet::new();
    };
    let mut acc = row_set(first);
    for rel in rest {
        let rattrs = rel.schema().attributes();
        let mut next = BTreeSet::new();
        for lmap in &acc {
            'rows: for rrow in rel.iter() {
                let mut merged = lmap.clone();
                for (a, &v) in rattrs.iter().zip(rrow.iter()) {
                    match merged.get(a) {
                        Some(&existing) if existing != v => continue 'rows,
                        _ => {
                            merged.insert(a.clone(), v);
                        }
                    }
                }
                next.insert(merged);
            }
        }
        acc = next;
    }
    acc
}

/// Reference semijoin membership test.
fn oracle_semijoin(rel: &Relation, other: &Relation) -> BTreeSet<BTreeMap<String, Value>> {
    let common = rel.schema().common_attributes(other.schema());
    let other_keys: BTreeSet<Vec<Value>> = other
        .iter()
        .map(|row| {
            common
                .iter()
                .map(|a| row[other.schema().position(a).unwrap()])
                .collect()
        })
        .collect();
    row_set(rel)
        .into_iter()
        .filter(|m| {
            if common.is_empty() {
                return !other.is_empty();
            }
            let key: Vec<Value> = common.iter().map(|a| m[a]).collect();
            other_keys.contains(&key)
        })
        .collect()
}

/// A tiny deterministic generator (xorshift64*) so random databases derive
/// from one proptest-chosen seed.
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, span: u64) -> u64 {
        self.next() % span.max(1)
    }
}

/// A random relation over a shared attribute pool: arity 0..=3, up to 24
/// rows over a small domain (plenty of join hits and duplicates).
fn random_relation(rng: &mut Xs, name: &str) -> Relation {
    const POOL: [&str; 4] = ["a", "b", "c", "d"];
    let arity = rng.below(4) as usize;
    let mut attrs: Vec<String> = Vec::new();
    let mut start = rng.below(4) as usize;
    while attrs.len() < arity {
        attrs.push(POOL[start % POOL.len()].to_string());
        start += 1;
    }
    let rows = rng.below(25) as usize;
    let mut rel = Relation::empty(Schema::new(name, attrs));
    let mut row = Vec::with_capacity(arity);
    for _ in 0..rows {
        row.clear();
        row.extend((0..arity).map(|_| rng.below(6)));
        rel.push_row(&row);
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn natural_join_matches_tuple_oracle(seed in 0u64..1_000_000) {
        let mut rng = Xs(seed);
        let left = random_relation(&mut rng, "L");
        let right = random_relation(&mut rng, "R");
        let joined = natural_join(&left, &right);
        // Schema: left attributes then the right extras, exactly.
        let mut expected_attrs = left.schema().attributes().to_vec();
        for a in right.schema().attributes() {
            if left.schema().position(a).is_none() {
                expected_attrs.push(a.clone());
            }
        }
        prop_assert_eq!(joined.schema().attributes(), &expected_attrs[..]);
        prop_assert_eq!(row_set(&joined), oracle_join(&left, &right));
    }

    #[test]
    fn natural_join_all_matches_tuple_oracle(seed in 0u64..1_000_000, k in 1usize..5) {
        let mut rng = Xs(seed);
        let rels: Vec<Relation> = (0..k)
            .map(|i| random_relation(&mut rng, &format!("R{i}")))
            .collect();
        let joined = natural_join_all(&rels);
        prop_assert_eq!(row_set(&joined), oracle_join_all(&rels));
    }

    #[test]
    fn project_matches_tuple_oracle(seed in 0u64..1_000_000) {
        let mut rng = Xs(seed);
        let rel = random_relation(&mut rng, "R");
        let keep = rng.below(rel.arity() as u64 + 1) as usize;
        let attrs: Vec<String> = rel.schema().attributes()[..keep].to_vec();
        let projected = project(&rel, &attrs, "P");
        // Set semantics: the distinct projections of every row.
        let expected: BTreeSet<Vec<Value>> = rel
            .iter()
            .map(|row| attrs.iter().map(|a| row[rel.schema().position(a).unwrap()]).collect())
            .collect();
        let got: BTreeSet<Vec<Value>> = projected.iter().map(|r| r.to_vec()).collect();
        prop_assert_eq!(got, expected);
        // `project` (the join-module wrapper) applies set semantics.
        prop_assert_eq!(projected.len(), projected.canonicalized().len());
    }

    #[test]
    fn semijoin_and_antijoin_match_tuple_oracle(seed in 0u64..1_000_000) {
        let mut rng = Xs(seed);
        let rel = random_relation(&mut rng, "L");
        let other = random_relation(&mut rng, "R");
        let semi = rel.semijoin(&other);
        prop_assert_eq!(row_set(&semi), oracle_semijoin(&rel, &other));
        // Semijoin + antijoin partition the (deduplicated) relation.
        let anti = rel.antijoin(&other);
        prop_assert_eq!(semi.len() + anti.len(), rel.len());
        let mut union = semi.clone();
        union.append(&anti);
        prop_assert_eq!(
            union.canonicalized().to_tuples(),
            rel.canonicalized().to_tuples()
        );
    }

    #[test]
    fn dedup_collapses_exact_duplicates_only(seed in 0u64..1_000_000) {
        let mut rng = Xs(seed);
        let rel = random_relation(&mut rng, "R");
        let mut doubled = rel.clone();
        doubled.append(&rel);
        let mut deduped = doubled.clone();
        deduped.dedup();
        let distinct: BTreeSet<Vec<Value>> = rel.iter().map(|r| r.to_vec()).collect();
        prop_assert_eq!(deduped.len(), distinct.len());
        let got: BTreeSet<Vec<Value>> = deduped.iter().map(|r| r.to_vec()).collect();
        prop_assert_eq!(got, distinct);
    }
}

#[test]
fn nullary_relations_join_as_logical_conjunction() {
    let mut truthy = Relation::empty(Schema::new("T", vec![]));
    truthy.push_row(&[]);
    let falsy = Relation::empty(Schema::new("F", vec![]));
    let r = Relation::from_rows(Schema::from_strs("R", &["x"]), vec![vec![1], vec![2]]);
    // true ⋈ R = R; false ⋈ R = ∅; true ⋈ true = true.
    assert_eq!(natural_join(&truthy, &r).len(), 2);
    assert_eq!(natural_join(&r, &truthy).len(), 2);
    assert!(natural_join(&falsy, &r).is_empty());
    let tt = natural_join(&truthy, &truthy);
    assert_eq!(tt.arity(), 0);
    assert_eq!(tt.len(), 1);
}

#[test]
fn empty_relations_annihilate_joins() {
    let empty = Relation::empty(Schema::from_strs("E", &["x", "y"]));
    let r = Relation::from_rows(Schema::from_strs("R", &["y", "z"]), vec![vec![1, 2]]);
    assert!(natural_join(&empty, &r).is_empty());
    assert!(natural_join(&r, &empty).is_empty());
    assert!(natural_join_all(&[r.clone(), empty.clone()]).is_empty());
    assert!(r.semijoin(&empty).is_empty());
    assert_eq!(r.antijoin(&empty).len(), 1);
}

#[test]
fn arity_one_joins_are_intersections() {
    let a = Relation::from_rows(
        Schema::from_strs("A", &["x"]),
        vec![vec![1], vec![2], vec![3], vec![2]],
    );
    let b = Relation::from_rows(Schema::from_strs("B", &["x"]), vec![vec![2], vec![3], vec![9]]);
    let j = natural_join(&a, &b).canonicalized();
    assert_eq!(j.arity(), 1);
    assert_eq!(j.values(), &[2, 3]);
}

#[test]
fn duplicate_rows_survive_until_dedup() {
    // Joins have bag semantics until dedup: 2 copies × 3 copies = 6 rows.
    let a = Relation::from_rows(Schema::from_strs("A", &["x"]), vec![vec![5], vec![5]]);
    let b = Relation::from_rows(
        Schema::from_strs("B", &["x", "y"]),
        vec![vec![5, 1], vec![5, 1], vec![5, 1]],
    );
    let mut j = natural_join(&a, &b);
    assert_eq!(j.len(), 6);
    j.dedup();
    assert_eq!(j.len(), 1);
    assert_eq!(j.row(0), &[5, 1]);
}
