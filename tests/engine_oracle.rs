//! Oracle equivalence for the `pq-engine` subsystem: for random databases
//! (skew-free matchings and databases with planted heavy hitters) and a
//! suite of query shapes (paths, triangle, stars, star-of-paths mixes,
//! Cartesian-free combinations), the engine's parse → plan → execute
//! pipeline must return exactly the answer of the sequential
//! `natural_join_all` oracle — whatever strategy the planner picked.

use pq_bench::matching_database_for_query;
use pq_engine::{Engine, Strategy};
use pq_query::{evaluate_sequential, ConjunctiveQuery};
use pq_relation::{Database, Tuple};
use proptest::prelude::*;

/// The query shapes under test. Query text is produced by
/// `ConjunctiveQuery`'s `Display`, which the engine's parser round-trips.
fn query_suite() -> Vec<ConjunctiveQuery> {
    vec![
        ConjunctiveQuery::chain(2),
        ConjunctiveQuery::chain(3),
        ConjunctiveQuery::triangle(),
        ConjunctiveQuery::star(3),
        ConjunctiveQuery::star_of_paths(2),
        ConjunctiveQuery::cartesian_pair(),
    ]
}

/// A matching database for the query; with `skew`, every relation
/// additionally gets a heavy hitter (value 0) of degree `~m/8` in its
/// first column — far above the `m/p` threshold for the `p` used in these
/// tests, while keeping residual Cartesian products (hub-degree cubed for
/// the star) affordable for the sequential oracle.
fn database_for(query: &ConjunctiveQuery, m: usize, seed: u64, skew: bool) -> Database {
    let mut db = matching_database_for_query(query, m, seed);
    let domain = db.domain_size();
    if skew {
        let heavy = (m / 8).max(8);
        for (j, atom) in query.atoms().iter().enumerate() {
            let rel = db.relation_mut(atom.relation()).expect("relation exists");
            for i in 0..heavy as u64 {
                let mut row = vec![0u64; atom.arity()];
                for (c, cell) in row.iter_mut().enumerate().skip(1) {
                    *cell = domain - 1 - (i * 7 + c as u64 + j as u64 * 977) % 3000;
                }
                rel.push(Tuple::new(row));
            }
            rel.dedup();
        }
    }
    db
}

/// Engine answer == sequential oracle, for one query/database/p.
fn assert_matches_oracle(query: &ConjunctiveQuery, db: &Database, p: usize) {
    let oracle = evaluate_sequential(query, db).canonicalized();
    let session = Engine::new(db.clone(), p).session();
    let run = session
        .run(&query.to_string())
        .unwrap_or_else(|e| panic!("{} failed to run: {e}", query.name()));
    assert_eq!(
        run.outcome.output.canonicalized(),
        oracle,
        "strategy {} disagrees with the oracle on {} (p = {p})",
        run.plan.strategy.name(),
        query.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_matches_oracle_on_random_databases(
        seed in 0u64..1000,
        m in 20usize..80,
        p in 2usize..32,
        skew in any::<bool>(),
    ) {
        for query in query_suite() {
            let db = database_for(&query, m, seed, skew);
            let oracle = evaluate_sequential(&query, &db).canonicalized();
            let session = Engine::new(db, p).session();
            let run = session.run(&query.to_string()).expect("engine runs");
            prop_assert!(
                run.outcome.output.canonicalized() == oracle,
                "strategy {} disagrees with the oracle on {} (seed {seed}, m {m}, p {p}, skew {skew})",
                run.plan.strategy.name(),
                query.name()
            );
        }
    }
}

#[test]
fn skewed_triangle_routes_to_the_skew_aware_algorithm_and_is_correct() {
    let query = ConjunctiveQuery::triangle();
    let db = database_for(&query, 300, 41, true);
    let session = Engine::new(db.clone(), 16).session();
    let run = session.run(&query.to_string()).expect("runs");
    assert!(
        matches!(run.plan.strategy, Strategy::SkewAwareTriangle { .. }),
        "expected the skew split, got {}",
        run.plan.strategy.name()
    );
    assert_matches_oracle(&query, &db, 16);
}

#[test]
fn skewed_star_routes_to_the_skew_aware_algorithm_and_is_correct() {
    let query = ConjunctiveQuery::star(3);
    let db = database_for(&query, 300, 43, true);
    let session = Engine::new(db.clone(), 16).session();
    let run = session.run(&query.to_string()).expect("runs");
    assert!(
        matches!(run.plan.strategy, Strategy::SkewAwareStar { .. }),
        "expected the skew-aware star, got {}",
        run.plan.strategy.name()
    );
    assert_matches_oracle(&query, &db, 16);
}

#[test]
fn large_path_goes_multi_round_and_is_correct() {
    let query = ConjunctiveQuery::chain(3);
    let db = database_for(&query, 1_200, 47, false);
    let session = Engine::new(db.clone(), 64).session();
    let run = session.run(&query.to_string()).expect("runs");
    assert!(
        matches!(run.plan.strategy, Strategy::MultiRound { rounds: 2, .. }),
        "expected a 2-round plan, got {}",
        run.plan.strategy.name()
    );
    assert_matches_oracle(&query, &db, 64);
}

#[test]
fn repeated_queries_hit_the_plan_cache_with_identical_answers() {
    let query = ConjunctiveQuery::triangle();
    let db = database_for(&query, 200, 53, false);
    let engine = Engine::new(db, 27);
    let session = engine.session();
    let first = session.run(&query.to_string()).expect("runs");
    assert!(!first.cache_hit);
    let second = session.run(&query.to_string()).expect("runs");
    assert!(second.cache_hit, "second run must reuse the cached plan");
    assert_eq!(
        first.outcome.output.canonicalized(),
        second.outcome.output.canonicalized()
    );
    assert_eq!(engine.cache_stats().hits, 1);
}

#[test]
fn every_strategy_family_appears_across_the_matrix() {
    // Sanity check that the suite above actually exercises all four
    // strategies, so a planner regression cannot silently shrink coverage.
    let mut seen = std::collections::BTreeSet::new();
    let cases: Vec<(ConjunctiveQuery, usize, bool, usize)> = vec![
        (ConjunctiveQuery::triangle(), 200, false, 27),
        (ConjunctiveQuery::triangle(), 200, true, 16),
        (ConjunctiveQuery::star(3), 200, true, 16),
        (ConjunctiveQuery::chain(3), 1_200, false, 64),
    ];
    for (query, m, skew, p) in cases {
        let db = database_for(&query, m, 59, skew);
        let session = Engine::new(db, p).session();
        let run = session.run(&query.to_string()).expect("runs");
        seen.insert(run.plan.strategy.name());
    }
    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        vec![
            "multi-round bushy plan",
            "one-round HyperCube",
            "skew-aware star",
            "skew-aware triangle"
        ]
    );
}
