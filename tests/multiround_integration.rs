//! Integration tests for Section 5: multi-round plans, the Γ classes, round
//! bounds and connected components.

use pq_bench::{identity_chain_database, matching_database_for_query};
use pq_core::bounds::multiround::{
    chain_good_set, chain_plan_lengths, chain_rounds_lower_bound, cycle_rounds_lower_bound,
    in_gamma_one, is_epsilon_good, k_epsilon, rounds_upper_bound, treelike_rounds_lower_bound,
};
use pq_core::multiround::connected::{
    connected_components, connected_components_oracle, CcStrategy,
};
use pq_core::multiround::plan::{bushy_chain_plan, execute_plan, star_of_paths_plan, PlanNode};
use pq_core::prelude::*;
use pq_query::evaluate_sequential;
use pq_relation::DataGenerator;
use std::collections::BTreeMap;

#[test]
fn example_5_2_l16_with_fan_in_four_runs_in_two_rounds() {
    let k = 16;
    let query = ConjunctiveQuery::chain(k);
    let db = identity_chain_database(k, 1_500);
    let p = 64;
    let run = execute_plan(&bushy_chain_plan(k, 4), &query, &db, p, 3);
    assert_eq!(run.metrics.num_rounds(), 2);
    assert_eq!(run.output.len(), 1_500);
    // Round structure: 4 L4-operators, then one top join.
    assert_eq!(run.round_views[0].len(), 4);
    assert_eq!(run.round_views[1].len(), 1);
    // Lower bound at eps = 1/2 is exactly 2 rounds (Corollary 5.15).
    assert_eq!(chain_rounds_lower_bound(k, 0.5), 2);
}

#[test]
fn plan_depth_matches_round_bounds_for_chains() {
    for (k, fan_in, epsilon) in [(8usize, 2usize, 0.0f64), (16, 2, 0.0), (16, 4, 0.5), (9, 3, 0.5)] {
        let plan = bushy_chain_plan(k, fan_in);
        let lower = chain_rounds_lower_bound(k, epsilon);
        assert!(
            plan.depth() >= lower,
            "L_{k} fan-{fan_in}: depth {} below the lower bound {lower}",
            plan.depth()
        );
        assert!(plan.depth() <= lower + 1, "L_{k} fan-{fan_in}: depth too deep");
    }
}

#[test]
fn gamma_one_membership_drives_one_round_feasibility() {
    // Queries in Γ¹_ε are computable in one round at load O(M/p^{1−ε});
    // check the measured space exponent for a borderline member.
    let q = ConjunctiveQuery::chain(4); // τ* = 2, in Γ¹ for ε = 1/2
    assert!(in_gamma_one(&q, 0.5));
    assert!(!in_gamma_one(&q, 0.49));
    let db = matching_database_for_query(&q, 6_000, 5);
    let p = 64;
    let run = run_hypercube(&q, &db, p, 7);
    let eps = run.metrics.space_exponent(p).expect("defined");
    assert!(eps < 0.62, "measured eps {eps} should be close to 1/2");
}

#[test]
fn epsilon_good_sets_and_plans_for_chains() {
    for (k, eps) in [(8usize, 0.0f64), (16, 0.0), (16, 0.5), (20, 0.5)] {
        let q = ConjunctiveQuery::chain(k);
        let m = chain_good_set(k, eps);
        assert!(is_epsilon_good(&q, &m, eps), "L_{k}, eps={eps}");
        let lengths = chain_plan_lengths(k, eps);
        assert_eq!(lengths[0], k);
        assert!(*lengths.last().expect("non-empty") <= k_epsilon(eps).max(2));
        // Lengths shrink by roughly kε each step.
        for w in lengths.windows(2) {
            assert_eq!(w[1], w[0].div_ceil(k_epsilon(eps).max(2)));
        }
    }
}

#[test]
fn round_bounds_agree_with_paper_examples() {
    // Example 5.19: C6 tight at 3 rounds, C5 lower bound 2 / upper bound 3.
    assert_eq!(cycle_rounds_lower_bound(6, 0.0), 3);
    assert_eq!(rounds_upper_bound(&ConjunctiveQuery::cycle(6), 0.0), 3);
    assert_eq!(cycle_rounds_lower_bound(5, 0.0), 2);
    assert_eq!(rounds_upper_bound(&ConjunctiveQuery::cycle(5), 0.0), 3);
    // Tree-like bound uses the diameter (Cor. 5.17).
    assert_eq!(
        treelike_rounds_lower_bound(&ConjunctiveQuery::star_of_paths(4), 0.0),
        2
    );
}

#[test]
fn arbitrary_hand_built_plans_execute_correctly() {
    // A hand-built unbalanced plan for L5.
    let query = ConjunctiveQuery::chain(5);
    let db = matching_database_for_query(&query, 800, 13);
    let plan = PlanNode::join(
        "root",
        vec![
            PlanNode::join(
                "left",
                vec![
                    PlanNode::base("S1"),
                    PlanNode::base("S2"),
                    PlanNode::base("S3"),
                ],
            ),
            PlanNode::join("right", vec![PlanNode::base("S4"), PlanNode::base("S5")]),
        ],
    );
    let run = execute_plan(&plan, &query, &db, 16, 17);
    let oracle = evaluate_sequential(&query, &db);
    assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    assert_eq!(run.metrics.num_rounds(), 2);
}

#[test]
fn star_of_paths_plan_achieves_m_over_p_per_round() {
    let k = 3;
    let query = ConjunctiveQuery::star_of_paths(k);
    let db = matching_database_for_query(&query, 6_000, 19);
    let p = 60;
    let run = execute_plan(&star_of_paths_plan(k), &query, &db, p, 23);
    let m_bits = db.relation_size_bits("R1") as f64;
    for load in run.metrics.per_round_max_loads() {
        // Each round's operators get p/k servers; allow generous constants.
        assert!((load as f64) < 10.0 * 2.0 * m_bits / (p / k) as f64);
    }
    assert_eq!(run.metrics.num_rounds(), 2);
}

#[test]
fn connected_components_round_growth_matches_theorem_5_20_shape() {
    // As the path length grows with p, pointer jumping uses Θ(log p) rounds
    // while propagation grows linearly.
    let mut jump_rounds = Vec::new();
    for (p, layers) in [(8usize, 4usize), (16, 8), (32, 16), (64, 32)] {
        let mut gen = DataGenerator::new(layers as u64, 1 << 22);
        let edges = gen.layered_matching_graph(500, layers);
        let jump = connected_components(&edges, p, 7, CcStrategy::PointerJumping);
        let prop = connected_components(&edges, p, 7, CcStrategy::Propagation);
        // Correctness against the union-find oracle.
        let oracle = connected_components_oracle(&edges);
        let got: BTreeMap<_, _> = jump.labels.iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(got.len(), oracle.len());
        assert!(prop.iterations >= layers, "propagation must walk the diameter");
        assert!(
            jump.iterations <= 2 * (layers as f64).log2().ceil() as usize + 2,
            "jumping used {} iterations for {layers} layers",
            jump.iterations
        );
        jump_rounds.push(jump.metrics.num_rounds());
    }
    // Logarithmic growth: doubling the diameter adds O(1) iterations.
    for w in jump_rounds.windows(2) {
        assert!(w[1] <= w[0] + 4, "jump rounds grew too fast: {jump_rounds:?}");
    }
}

#[test]
fn per_round_load_of_connected_components_is_balanced() {
    let mut gen = DataGenerator::new(3, 1 << 22);
    let edges = gen.layered_matching_graph(4_000, 8);
    let p = 32;
    let run = connected_components(&edges, p, 9, CcStrategy::PointerJumping);
    let input_bits = edges.size_bits(pq_relation::bits_per_value(1 << 22)) as f64;
    for load in run.metrics.per_round_max_loads() {
        assert!(
            (load as f64) < 8.0 * input_bits / p as f64 + 2048.0,
            "round load {load} too far above M/p = {}",
            input_bits / p as f64
        );
    }
}
