//! Distributed-vs-simulator oracle: the cluster backend (real `pqd`-style
//! worker threads behind TCP sockets) must return exactly the rows of the
//! in-process simulator — which the `engine_oracle` suite already holds to
//! the sequential `natural_join_all` oracle — for random databases, a
//! suite of query shapes, and `p` both above and below the worker count.
//!
//! Beyond row-for-row equality the suite checks the two cost accounts
//! against each other: the cluster's *model* bits (`received_bits`) must be
//! bit-identical to the simulator's for one-round HyperCube plans (same
//! router, same seed, same shares), and the *measured* wire bytes must
//! bracket the model load — at least `total_bits / 8` (the wire ships
//! 64-bit values, the model charges `log n` bits) and at most the model's
//! value count at 64 bits plus bounded framing overhead.

use pq_bench::matching_database_for_query;
use pq_engine::{Engine, ExecBackend, Strategy};
use pq_mpc::net::{ClusterConfig, LocalWorkers};
use pq_query::{evaluate_sequential, ConjunctiveQuery};
use pq_relation::{Database, Relation, Schema, Tuple};
use proptest::prelude::*;

/// The query shapes under test: the triangle and star that the paper's
/// one-round algorithms target, a longer chain whose simulator plan may go
/// multi-round (exercising the cluster's one-round fallback), and the
/// disconnected Cartesian pair.
fn query_suite() -> Vec<ConjunctiveQuery> {
    vec![
        ConjunctiveQuery::triangle(),
        ConjunctiveQuery::chain(4),
        ConjunctiveQuery::star(3),
        ConjunctiveQuery::cartesian_pair(),
    ]
}

/// A matching database for the query; with `skew`, every relation gets a
/// heavy hitter (value 0) in its first column so the simulator routes to
/// the skew-aware strategies while the cluster falls back to plain
/// HyperCube — the outputs must agree regardless.
fn database_for(query: &ConjunctiveQuery, m: usize, seed: u64, skew: bool) -> Database {
    let mut db = matching_database_for_query(query, m, seed);
    let domain = db.domain_size();
    if skew {
        let heavy = (m / 8).max(8);
        for (j, atom) in query.atoms().iter().enumerate() {
            let rel = db.relation_mut(atom.relation()).expect("relation exists");
            for i in 0..heavy as u64 {
                let mut row = vec![0u64; atom.arity()];
                for (c, cell) in row.iter_mut().enumerate().skip(1) {
                    *cell = domain - 1 - (i * 7 + c as u64 + j as u64 * 977) % 3000;
                }
                rel.push(Tuple::new(row));
            }
            rel.dedup();
        }
    }
    db
}

/// Run `query` on `db` with budget `p` on both backends over `workers`
/// live worker threads, assert row-for-row equality against the
/// sequential oracle and both cost-account relations, and return the
/// simulator strategy that was exercised.
fn assert_cluster_matches_simulator(
    query: &ConjunctiveQuery,
    db: &Database,
    p: usize,
    workers: usize,
) -> &'static str {
    let cluster = LocalWorkers::spawn(workers).expect("spawn local workers");
    let config = ClusterConfig::new(cluster.addresses().to_vec());

    let oracle = evaluate_sequential(query, db).canonicalized();
    let sim = Engine::new(db.clone(), p)
        .session()
        .run(&query.to_string())
        .expect("simulator run");
    let run = Engine::new(db.clone(), p)
        .with_backend(ExecBackend::cluster(config))
        .session()
        .run(&query.to_string())
        .expect("cluster run");

    assert_eq!(
        run.outcome.output.canonicalized(),
        oracle,
        "cluster disagrees with the sequential oracle on {} (p = {p}, workers = {workers})",
        query.name()
    );
    assert_eq!(
        run.outcome.output.canonicalized(),
        sim.outcome.output.canonicalized(),
        "cluster disagrees with the simulator on {} (p = {p}, workers = {workers})",
        query.name()
    );

    // Measured-vs-model accounting. The cluster executes exactly one
    // shuffle round; unless the join was empty on every worker, real
    // traffic crossed the wire.
    let metrics = &run.outcome.metrics;
    assert_eq!(metrics.num_rounds(), 1, "cluster plans are one-round");
    assert!(
        metrics.is_measured(),
        "cluster runs must carry measured wire bytes"
    );
    let round = &metrics.rounds[0];
    assert_eq!(round.received_bits.len(), p, "model account is per logical server");
    assert_eq!(round.wire_bytes.len(), workers, "wire account is per worker");
    assert!(round.wall_micros > 0, "round wall time is measured");

    // Lower bound: the wire ships every model value as a 64-bit word plus
    // headers, and the model charges `bits_per_value <= 64` bits for it.
    assert!(
        round.total_wire_bytes() * 8 >= round.total_bits(),
        "wire bytes ({}) cannot undercut the model bits ({})",
        round.total_wire_bytes(),
        round.total_bits()
    );
    // Upper bound: 64 bits per model value, plus a generous per-frame and
    // per-worker allowance for headers, schemas and Execute programs.
    let bits_per_value = db.bits_per_value().max(1);
    let values_shipped = round.total_bits() / bits_per_value;
    let overhead_bits = 8 * (round.messages as u64 * 512 + workers as u64 * 2048);
    assert!(
        round.total_wire_bytes() * 8 <= values_shipped * 64 + overhead_bits,
        "wire bytes ({}) exceed 64 bits/value on {} model values plus framing",
        round.total_wire_bytes(),
        values_shipped
    );

    // Model-account parity: when the simulator itself ran one-round
    // HyperCube, both backends routed the same messages with the same
    // seed, so the per-logical-server bit counts must be identical.
    if matches!(sim.plan.strategy, Strategy::HyperCube { .. }) {
        assert_eq!(
            round.received_bits, sim.outcome.metrics.rounds[0].received_bits,
            "cluster model bits must match the simulator bit-for-bit on {}",
            query.name()
        );
    }

    // The simulator, by contrast, must never claim measured traffic.
    assert!(!sim.outcome.metrics.is_measured());

    cluster.shutdown();
    sim.plan.strategy.name()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The headline oracle: random databases x query suite x p in
    // {2, 4, 8}, over 3 workers (so p = 4 and p = 8 exercise the
    // logical-server folding, p = 2 leaves a worker idle).
    #[test]
    fn cluster_matches_simulator_on_random_databases(
        seed in 0u64..1000,
        m in 20usize..60,
        p_choice in 0usize..3,
        skew in any::<bool>(),
    ) {
        let p = [2, 4, 8][p_choice];
        for query in query_suite() {
            let db = database_for(&query, m, seed, skew);
            assert_cluster_matches_simulator(&query, &db, p, 3);
        }
    }
}

#[test]
fn skew_aware_simulator_plans_fall_back_to_hypercube_on_the_cluster() {
    // The planner picks the skew-aware triangle for this database; the
    // cluster backend runs the plan's shares as plain one-round HyperCube
    // and must still agree with both oracles.
    let query = ConjunctiveQuery::triangle();
    let db = database_for(&query, 300, 41, true);
    let strategy = assert_cluster_matches_simulator(&query, &db, 16, 3);
    assert_eq!(strategy, "skew-aware triangle");
}

#[test]
fn multi_round_simulator_plans_fall_back_to_hypercube_on_the_cluster() {
    let query = ConjunctiveQuery::chain(3);
    let db = database_for(&query, 1_200, 47, false);
    let strategy = assert_cluster_matches_simulator(&query, &db, 64, 3);
    assert_eq!(strategy, "multi-round bushy plan");
}

#[test]
fn a_single_worker_carries_every_logical_server() {
    let query = ConjunctiveQuery::triangle();
    let db = database_for(&query, 80, 11, false);
    assert_cluster_matches_simulator(&query, &db, 8, 1);
}

#[test]
fn an_empty_database_yields_an_empty_answer_without_hanging() {
    let query = ConjunctiveQuery::triangle();
    let empty = Database::from_relations(
        query
            .atoms()
            .iter()
            .map(|a| {
                let cols: Vec<String> = (0..a.arity()).map(|i| format!("c{i}")).collect();
                Relation::empty(Schema::new(a.relation(), cols))
            })
            .collect(),
    );
    let cluster = LocalWorkers::spawn(2).expect("spawn local workers");
    let config = ClusterConfig::new(cluster.addresses().to_vec());
    let run = Engine::new(empty, 4)
        .with_backend(ExecBackend::cluster(config))
        .session()
        .run(&query.to_string())
        .expect("cluster run");
    assert_eq!(run.outcome.output.len(), 0);
    // No fragments crossed the wire, but every worker still received its
    // Execute frame — the round is measured even when the data is empty.
    assert!(run.outcome.metrics.is_measured());
    cluster.shutdown();
}
