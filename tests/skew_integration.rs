//! Integration tests for the skew story of Section 4: the standard hash
//! join degrades, the skew-oblivious LP hedges, and the skew-aware
//! algorithms recover the heavy-hitter bounds while staying correct.

use pq_bench::{hub_triangle_database, skewed_star_database};
use pq_core::baselines::shuffle_hash_join;
use pq_core::bounds::skew_bounds::{
    skewed_lower_bound, star_heavy_hitter_bound, SkewStatistics,
};
use pq_core::hypercube::run_hypercube_with_shares;
use pq_core::prelude::*;
use pq_core::shares::{integer_shares, ShareRounding};
use pq_core::skew::heavy::{all_heavy_hitters, heavy_hitters_of_variable};
use pq_core::skew::oblivious::{oblivious_share_exponents, oblivious_worst_case_load};
use pq_query::evaluate_sequential;
use std::collections::BTreeMap;

#[test]
fn example_4_1_hash_join_degrades_but_stays_correct() {
    let query = ConjunctiveQuery::simple_join();
    let m = 800;
    let p = 32;
    // Without skew the hash join achieves ~M/p.
    let db_light = skewed_star_database(2, m, 1, 7);
    let light = shuffle_hash_join(&query, &db_light, p, 9);
    let m_bits = db_light.relation_size_bits("S1");
    assert!(light.metrics.max_load() < 8 * m_bits / p as u64);
    // With all tuples on one key the load is the whole input.
    let db_heavy = skewed_star_database(2, m, m, 7);
    let heavy = shuffle_hash_join(&query, &db_heavy, p, 9);
    assert_eq!(heavy.metrics.max_load(), db_heavy.total_size_bits());
    assert_eq!(
        heavy.output.canonicalized(),
        evaluate_sequential(&query, &db_heavy).canonicalized()
    );
}

#[test]
fn oblivious_shares_bound_the_worst_case_and_stay_correct() {
    let query = ConjunctiveQuery::simple_join();
    let m = 1_200;
    let p = 64;
    let db = skewed_star_database(2, m, m / 2, 11);
    let exps = oblivious_share_exponents(&query, &db.sizes_bits(), p);
    let shares = integer_shares(&exps, ShareRounding::GreedyFill);
    let run = run_hypercube_with_shares(&query, &db, p, &shares, 13);
    assert_eq!(
        run.output.canonicalized(),
        evaluate_sequential(&query, &db).canonicalized()
    );
    // The measured load is below the oblivious worst-case guarantee.
    let guarantee = oblivious_worst_case_load(&query, &db.sizes_bits(), &shares);
    assert!((run.metrics.max_load() as f64) <= 4.0 * guarantee);
    // And the standard hash join's load under this much skew is higher.
    let hash = shuffle_hash_join(&query, &db, p, 13);
    assert!(run.metrics.max_load() < hash.metrics.max_load());
}

#[test]
fn skew_aware_star_matches_eq20_within_constants() {
    let query = ConjunctiveQuery::simple_join();
    let m = 6_000;
    let p = 64;
    for heavy in [400usize, 1_200] {
        let db = skewed_star_database(2, m, heavy, 17);
        let run = run_star_skew_aware(&query, &db, p, 19);
        assert_eq!(
            run.output.canonicalized(),
            evaluate_sequential(&query, &db).canonicalized()
        );
        let bits = db.bits_per_value() as f64;
        let hh = heavy as f64 * 2.0 * bits;
        let maps = [
            BTreeMap::from([(0u64, hh)]),
            BTreeMap::from([(0u64, hh)]),
        ];
        let bound =
            star_heavy_hitter_bound(&maps, p).max(db.relation_size_bits("S1") as f64 / p as f64);
        assert!(
            (run.metrics.max_load() as f64) < 10.0 * bound,
            "heavy={heavy}: load {} vs bound {bound}",
            run.metrics.max_load()
        );
    }
}

#[test]
fn theorem_4_4_lower_bound_is_below_the_skew_aware_load() {
    // The lower bound must not exceed what the (near-optimal) algorithm
    // achieves — otherwise one of the two is wrong.
    let query = ConjunctiveQuery::simple_join();
    let m = 4_000;
    let p = 64;
    let db = skewed_star_database(2, m, 1_000, 23);
    let stats = SkewStatistics::compute(&query, &db, &["z".to_string()]);
    let lower = skewed_lower_bound(&query, &stats, p);
    let run = run_star_skew_aware(&query, &db, p, 29);
    assert!(
        lower <= 2.0 * run.metrics.max_load() as f64,
        "lower bound {lower} above measured optimal-ish load {}",
        run.metrics.max_load()
    );
    assert!(lower > 0.0);
}

#[test]
fn heavy_hitter_detection_is_consistent_with_statistics() {
    let query = ConjunctiveQuery::star(3);
    let m = 2_000;
    let heavy = 500;
    let db = skewed_star_database(3, m, heavy, 31);
    let p = 16;
    let hh = heavy_hitters_of_variable(&query, &db, "z", p as f64);
    assert!(hh.is_heavy(0));
    for j in 1..=3 {
        assert_eq!(hh.frequency(&format!("S{j}"), 0), heavy);
    }
    let all = all_heavy_hitters(&query, &db, p);
    assert!(all["z"].is_heavy(0));
    for j in 1..=3 {
        assert!(all[&format!("x{j}")].values.is_empty());
    }
}

#[test]
fn skew_aware_triangle_beats_vanilla_and_matches_oracle_across_hub_sizes() {
    let m = 4_000;
    let p = 64;
    let query = ConjunctiveQuery::triangle();
    for hub in [40usize, 400, 2_000] {
        let db = hub_triangle_database(m, hub, 37);
        let aware = run_triangle_skew_aware(&db, p, 41);
        let oracle = evaluate_sequential(&query, &db);
        assert_eq!(aware.output.canonicalized(), oracle.canonicalized(), "hub={hub}");
        if hub >= 2_000 {
            let vanilla = run_hypercube(&query, &db, p, 41);
            assert!(
                aware.metrics.max_load() < vanilla.metrics.max_load(),
                "hub={hub}: aware {} vs vanilla {}",
                aware.metrics.max_load(),
                vanilla.metrics.max_load()
            );
        }
    }
}
